package server

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/workloads"
)

// metricValue extracts one counter from the /metrics text summary.
func metricValue(t *testing.T, metrics, name string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		// Summary lines are "<kind> <name> <value>".
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[1] == name {
			return fields[2]
		}
	}
	t.Fatalf("metric %q absent from summary:\n%s", name, metrics)
	return ""
}

func TestDecodeOnceAcrossPolicies(t *testing.T) {
	speculate.ClearBenchCache()
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	for _, policy := range []string{"postdoms", "loop"} {
		st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != "succeeded" {
			t.Fatalf("%s job state = %q (%s)", policy, fin.State, fin.Error)
		}
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "server.traces.emu_decodes"); got != "1" {
		t.Errorf("server.traces.emu_decodes = %s, want 1 (decode once, simulate many)", got)
	}
	if got := metricValue(t, metrics, "server.traces.memo_hits"); got != "1" {
		t.Errorf("server.traces.memo_hits = %s, want 1", got)
	}
}

func TestTraceEndpoint(t *testing.T) {
	speculate.ClearBenchCache()
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	data, err := c.Trace(ctx, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := speculate.LoadFromTraceData("gzip", data)
	if err != nil {
		t.Fatalf("served trace does not decode: %v", err)
	}
	ref, err := speculate.Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b.Trace.Len() != ref.Trace.Len() {
		t.Fatalf("served trace has %d entries, want %d", b.Trace.Len(), ref.Trace.Len())
	}

	// A second fetch is served from the artifact cache, no re-emulation.
	if _, err := c.Trace(ctx, "gzip"); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "server.traces.served"); got != "2" {
		t.Errorf("server.traces.served = %s, want 2", got)
	}
	if got := metricValue(t, metrics, "server.traces.emu_decodes"); got != "1" {
		t.Errorf("server.traces.emu_decodes = %s, want 1", got)
	}

	if _, err := c.Trace(ctx, "no-such-bench"); err == nil {
		t.Fatal("unknown bench served a trace")
	}
}

// TestTraceUpstreamPrefetch drives a worker daemon pointed at an upstream
// coordinator: the worker's first job for a workload pulls the encoded
// trace over /v1/traces instead of re-running the emulator, stores it in
// its own cache byte-identically, and never fetches the workload again.
func TestTraceUpstreamPrefetch(t *testing.T) {
	// Warm the coordinator-side cache with one real emulator run.
	speculate.ClearBenchCache()
	t.Cleanup(speculate.ClearBenchCache)
	coordCache, err := artifact.New(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := speculate.LoadCached("gzip", coordCache); err != nil {
		t.Fatal(err)
	}
	_, upstream := newTestServer(t, Config{Cache: coordCache})

	// Drop the process memo so the worker cannot shortcut past its own
	// (empty) cache; the only emulation-free path left is the prefetch.
	speculate.ClearBenchCache()
	workerCache, err := artifact.New(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, wc := newTestServer(t, Config{Cache: workerCache, TraceUpstream: upstream})
	ctx := context.Background()

	emuBefore := speculate.EmulatorRuns()
	for _, policy := range []string{"postdoms", "loop"} {
		st, _, err := wc.Submit(ctx, Request{Bench: "gzip", Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := wc.Wait(ctx, st.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != "succeeded" {
			t.Fatalf("%s job state = %q (%s)", policy, fin.State, fin.Error)
		}
	}
	if got := speculate.EmulatorRuns(); got != emuBefore {
		t.Errorf("worker re-ran the emulator %d times; the trace prefetch should have made that unnecessary", got-emuBefore)
	}

	metrics, err := wc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "server.traces.upstream_fetches"); got != "1" {
		t.Errorf("server.traces.upstream_fetches = %s, want 1 (decode once cluster-wide)", got)
	}
	if got := metricValue(t, metrics, "server.traces.emu_decodes"); got != "0" {
		t.Errorf("server.traces.emu_decodes = %s, want 0 on a prefetching worker", got)
	}

	// The prefetched artifact lands in the worker's cache under the same
	// content address, byte-identical to the coordinator's copy.
	w, ok := workloads.ByName("gzip")
	if !ok {
		t.Fatal("gzip workload missing")
	}
	key, err := artifact.NewTraceKey(w.Name, artifact.SourceSHA(w.Source), w.MaxInstrs)
	if err != nil {
		t.Fatal(err)
	}
	want, hit, err := coordCache.Get(key.Hash())
	if err != nil || !hit {
		t.Fatalf("coordinator cache lost the trace artifact (hit=%v err=%v)", hit, err)
	}
	got, hit, err := workerCache.Get(key.Hash())
	if err != nil || !hit {
		t.Fatalf("worker cache missing the prefetched trace artifact (hit=%v err=%v)", hit, err)
	}
	if !bytes.Equal(want, got) {
		t.Error("prefetched trace artifact differs from the coordinator's copy")
	}
}
