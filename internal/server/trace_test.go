package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/artifact"
)

// metricValue extracts one counter from the /metrics text summary.
func metricValue(t *testing.T, metrics, name string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		// Summary lines are "<kind> <name> <value>".
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[1] == name {
			return fields[2]
		}
	}
	t.Fatalf("metric %q absent from summary:\n%s", name, metrics)
	return ""
}

func TestDecodeOnceAcrossPolicies(t *testing.T) {
	speculate.ClearBenchCache()
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	for _, policy := range []string{"postdoms", "loop"} {
		st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != "succeeded" {
			t.Fatalf("%s job state = %q (%s)", policy, fin.State, fin.Error)
		}
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "server.traces.emu_decodes"); got != "1" {
		t.Errorf("server.traces.emu_decodes = %s, want 1 (decode once, simulate many)", got)
	}
	if got := metricValue(t, metrics, "server.traces.memo_hits"); got != "1" {
		t.Errorf("server.traces.memo_hits = %s, want 1", got)
	}
}

func TestTraceEndpoint(t *testing.T) {
	speculate.ClearBenchCache()
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	data, err := c.Trace(ctx, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := speculate.LoadFromTraceData("gzip", data)
	if err != nil {
		t.Fatalf("served trace does not decode: %v", err)
	}
	ref, err := speculate.Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b.Trace.Len() != ref.Trace.Len() {
		t.Fatalf("served trace has %d entries, want %d", b.Trace.Len(), ref.Trace.Len())
	}

	// A second fetch is served from the artifact cache, no re-emulation.
	if _, err := c.Trace(ctx, "gzip"); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "server.traces.served"); got != "2" {
		t.Errorf("server.traces.served = %s, want 2", got)
	}
	if got := metricValue(t, metrics, "server.traces.emu_decodes"); got != "1" {
		t.Errorf("server.traces.emu_decodes = %s, want 1", got)
	}

	if _, err := c.Trace(ctx, "no-such-bench"); err == nil {
		t.Fatal("unknown bench served a trace")
	}
}
