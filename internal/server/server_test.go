package server

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/jobqueue"
)

// newTestServer builds a server over an httptest listener. A nil runner
// simulates for real.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// stubRunner returns canned bytes after an optional gate.
func stubRunner(data []byte, gate chan struct{}) Runner {
	return func(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		return data, false, nil
	}
}

func TestSubmitLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{"ok":true}`), nil)})
	ctx := context.Background()
	st, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if st.ID == "" || st.Bench != "gzip" || st.Policy != "postdoms" {
		t.Fatalf("status = %+v", st)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "succeeded" {
		t.Fatalf("state = %q (%s)", fin.State, fin.Error)
	}
	raw, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"ok":true}` {
		t.Fatalf("result = %q", raw)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner(nil, nil)})
	ctx := context.Background()
	if _, code, err := c.Submit(ctx, Request{Bench: "nonesuch", Policy: "postdoms"}); err == nil || code != http.StatusBadRequest {
		t.Fatalf("unknown bench: code=%d err=%v", code, err)
	}
	if _, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "nonesuch"}); err == nil || code != http.StatusBadRequest {
		t.Fatalf("unknown policy: code=%d err=%v", code, err)
	}
	if _, err := c.Status(ctx, "j999999-gzip-postdoms"); err == nil {
		t.Fatal("missing job did not 404")
	}
}

func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	pool := jobqueue.New(jobqueue.Config{Workers: 1, QueueDepth: 1})
	_, c := newTestServer(t, Config{Pool: pool, Runner: stubRunner([]byte("x"), gate)})
	ctx := context.Background()

	// First job occupies the single worker, second the single queue slot.
	a, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, a.ID, "running")
	if _, _, err := c.Submit(ctx, Request{Bench: "mcf", Policy: "postdoms"}); err != nil {
		t.Fatal(err)
	}

	// The third submission must shed load with 429, not queue or block.
	_, code, err := c.Submit(ctx, Request{Bench: "twolf", Policy: "postdoms"})
	if err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("overload submit: code=%d err=%v", code, err)
	}
	close(gate)

	// Capacity freed: submissions are accepted again.
	if _, code, err = c.Submit(ctx, Request{Bench: "twolf", Policy: "postdoms"}); err != nil || code != http.StatusAccepted {
		t.Fatalf("post-drain submit: code=%d err=%v", code, err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte("x"), gate)})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, "running")
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "canceled" {
		t.Fatalf("state = %q", fin.State)
	}
	if _, err := c.ResultBytes(ctx, st.ID); err == nil {
		t.Fatal("canceled job served a result")
	}
}

func TestJobTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed: the job only ends via ctx
	defer close(gate)
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte("x"), gate)})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms", TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "canceled" {
		t.Fatalf("state = %q, want canceled (deadline)", fin.State)
	}
}

func TestDrainFlips503AndFinishesAccepted(t *testing.T) {
	gate := make(chan struct{})
	s, c := newTestServer(t, Config{Runner: stubRunner([]byte("x"), gate)})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, "running")

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, func() bool { return s.Pool().Draining() }, "pool draining")

	// Draining: healthz degrades and submissions answer 503.
	if c.Healthy(ctx) {
		t.Fatal("healthz still 200 while draining")
	}
	if _, code, err := c.Submit(ctx, Request{Bench: "mcf", Policy: "postdoms"}); err == nil || code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: code=%d err=%v", code, err)
	}

	// The accepted job still completes and its result is served.
	close(gate)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "succeeded" {
		t.Fatalf("state after drain = %q", fin.State)
	}
	if raw, err := c.ResultBytes(ctx, st.ID); err != nil || string(raw) != "x" {
		t.Fatalf("result after drain = %q, %v", raw, err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte("x"), nil)})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server.jobs.submitted", "server.jobs.succeeded", "pool.workers", "cache.misses"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// sseEvents collects one job's SSE stream until it closes.
func sseEvents(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	var ev string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, ev+" "+strings.TrimPrefix(line, "data: "))
		}
	}
	return events
}

func TestSSEStreamsStatesAndProgress(t *testing.T) {
	progressing := func(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
		for i := int64(1); i <= 3; i++ {
			progress(i*1000, i*500)
		}
		return []byte("x"), false, nil
	}
	hs := httptest.NewServer(mustServer(t, Config{Runner: progressing}))
	defer hs.Close()

	cl := &Client{Base: hs.URL}
	st, _, err := cl.Submit(context.Background(), Request{Bench: "gzip", Policy: "postdoms", SampleInterval: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(context.Background(), st.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The job is terminal: the stream replays the final state and closes.
	events := sseEvents(t, hs.URL, st.ID)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if !strings.HasPrefix(last, "state ") || !strings.Contains(last, `"succeeded"`) {
		t.Fatalf("last event = %q, want terminal state", last)
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSSELiveProgress(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	runner := func(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
		close(started)
		<-release
		progress(1024, 512)
		progress(2048, 1024)
		return []byte("x"), false, nil
	}
	s := mustServer(t, Config{Runner: runner})
	hs := httptest.NewServer(s)
	defer hs.Close()
	cl := &Client{Base: hs.URL}
	st, _, err := cl.Submit(context.Background(), Request{Bench: "gzip", Policy: "postdoms", SampleInterval: 1024})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	eventsCh := make(chan []string, 1)
	go func() { eventsCh <- sseEvents(t, hs.URL, st.ID) }()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach while running
	close(release)
	events := <-eventsCh
	var sawProgress, sawDone bool
	for _, ev := range events {
		if strings.HasPrefix(ev, "progress ") && strings.Contains(ev, `"cycle":2048`) {
			sawProgress = true
		}
		if strings.HasPrefix(ev, "state ") && strings.Contains(ev, `"succeeded"`) {
			sawDone = true
		}
	}
	if !sawProgress || !sawDone {
		t.Fatalf("events = %v (progress=%v done=%v)", events, sawProgress, sawDone)
	}
}

// TestRealSimulationMatchesGolden is the end-to-end check: submitting
// gzip/postdoms to a real (un-stubbed) server must produce the attribution
// report checked in as the repository golden, and a resubmission must be a
// cache hit serving byte-identical artifact bytes.
func TestRealSimulationMatchesGolden(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "succeeded" {
		t.Fatalf("state = %q (%s)", fin.State, fin.Error)
	}
	if fin.CacheHit {
		t.Fatal("cold job reported a cache hit")
	}
	rep, err := c.Attrib(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := attrib.ReadReportFile(filepath.Join("..", "..", "testdata", "attrib", "gzip_postdoms.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, goldenJSON := reportJSON(t, rep), reportJSON(t, golden)
	if gotJSON != goldenJSON {
		t.Errorf("served attribution report differs from golden")
	}

	// Resubmit: must be a cache hit with byte-identical artifact bytes.
	first, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := c.Wait(ctx, st2.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !fin2.CacheHit {
		t.Fatal("warm job missed the cache")
	}
	second, err := c.ResultBytes(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("cached artifact differs from cold run")
	}
}

func reportJSON(t *testing.T, r *attrib.Report) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestJobRetentionEvictsTerminal(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte("x"), nil), MaxJobs: 2})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) > 2 {
		t.Fatalf("retained %d records, want <= 2", len(list))
	}
	if _, err := c.Status(ctx, ids[0]); err == nil {
		t.Fatal("oldest record survived eviction")
	}
}

func waitState(t *testing.T, c *Client, id, want string) {
	t.Helper()
	waitFor(t, func() bool {
		st, err := c.Status(context.Background(), id)
		return err == nil && st.State == want
	}, "job "+id+" to reach "+want)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMain keeps the test binary honest about goroutine leaks at a coarse
// level: every server started via newTestServer is closed by cleanup.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
