// Package server implements the polyflowd HTTP/JSON simulation service:
// clients submit (bench, policy) simulation jobs, poll their status, stream
// progress over SSE, and fetch results and attribution reports. Jobs run on
// a shared jobqueue pool with reject-when-full backpressure (HTTP 429) and
// results are memoized in the content-addressed artifact cache, so a warm
// request is served by decoding stored bytes instead of resimulating.
//
// The API surface (all JSON unless noted):
//
//	POST   /v1/jobs             submit a job  -> 202, 429 when full, 503 draining
//	GET    /v1/jobs             list retained jobs, newest first
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/result the simulation artifact (polyflow-simart/1)
//	GET    /v1/jobs/{id}/attrib the attribution report (polyflow-attrib/1)
//	GET    /v1/jobs/{id}/events SSE stream: state transitions and progress
//	GET    /v1/jobs/{id}/spans  the job's trace: Chrome trace-event JSON (?format=raw for obs.Export)
//	GET    /metrics             telemetry summary, text/plain (?format=prometheus for exposition 0.0.4)
//	GET    /healthz             200 ok, 503 while draining
//	GET    /readyz              200 once serving traffic, 503 before ready or while draining
//
// Every job carries an obs.Trace; submitters may supply the ID in the
// X-Polyflow-Trace header (the cluster coordinator does) and phase spans
// (queue_wait, trace_fetch, bench_load, simulate, artifact_encode,
// cache_lookup) are recorded against it.
//
// See docs/SERVICE.md for the full protocol description.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/jobqueue"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

// ProgressFunc receives simulation progress; it matches the machine
// Config.OnSample observer hook and is called from the cycle loop.
type ProgressFunc func(cycle, retired int64)

// Runner computes one job's artifact bytes. The default runner simulates
// through the artifact cache; tests inject slow or failing runners to
// exercise backpressure, cancellation and drain without real simulations.
type Runner func(ctx context.Context, req Request, progress ProgressFunc) (data []byte, cacheHit bool, err error)

// Request is the POST /v1/jobs body.
type Request struct {
	// Bench and Policy name the simulation cell, as in `polyflow -bench
	// -policy` (policy accepts "superscalar", "rec_pred", or any static
	// spawn policy).
	Bench  string `json:"bench"`
	Policy string `json:"policy"`
	// Priority orders the queue: higher runs first.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds when positive.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SampleInterval, when positive, records an IPC sample (and emits an
	// SSE progress event) every that many cycles. It is a semantic input:
	// the samples land in the result artifact, so it participates in the
	// cache key.
	SampleInterval int64 `json:"sample_interval,omitempty"`
	// SpawnMask suppresses individual spawn sites, in the canonical
	// "0xPC:kind,..." encoding of machine.ParseSpawnMask. Semantic: each
	// distinct mask is its own artifact-cache identity, so re-evaluating a
	// candidate (polytune does this constantly) is a warm hit while two
	// different masks can never alias. Rejected for the superscalar
	// baseline, which has no spawns to suppress.
	SpawnMask string `json:"spawn_mask,omitempty"`
}

// Progress is the payload of an SSE progress event.
type Progress struct {
	Cycle   int64 `json:"cycle"`
	Retired int64 `json:"retired"`
}

// Status describes one job to clients.
type Status struct {
	ID         string    `json:"id"`
	Bench      string    `json:"bench"`
	Policy     string    `json:"policy"`
	SpawnMask  string    `json:"spawn_mask,omitempty"`
	State      string    `json:"state"`
	Error      string    `json:"error,omitempty"`
	CacheHit   bool      `json:"cache_hit"`
	Submitted  time.Time `json:"submitted_at"`
	Started    time.Time `json:"started_at"`
	Finished   time.Time `json:"finished_at"`
	DurationMS int64     `json:"duration_ms,omitempty"`
	Progress   *Progress `json:"progress,omitempty"`
	// TraceID joins this job against its spans, logs and the coordinator's
	// fleet timeline.
	TraceID string `json:"trace_id,omitempty"`
}

// Config assembles a Server.
type Config struct {
	// Pool schedules the jobs; nil builds an owned pool with jobqueue
	// defaults (GOMAXPROCS workers, queue depth 64).
	Pool *jobqueue.Pool
	// Cache memoizes simulation artifacts; nil builds a memory-only cache.
	Cache *artifact.Cache
	// MaxJobs bounds retained job records; <= 0 selects 4096. When the
	// bound is hit the oldest terminal record is evicted (running jobs are
	// never evicted).
	MaxJobs int
	// Runner overrides the simulation path (tests). Nil simulates.
	Runner Runner
	// TraceUpstream, when non-nil, names another polyflowd — typically the
	// cluster coordinator — to fetch missing trace artifacts from (GET
	// /v1/traces/{bench}) before falling back to local emulation. A cluster
	// worker therefore decodes each workload once ever and emulates none;
	// an unreachable upstream degrades to the local emulator.
	TraceUpstream *Client
	// MetricsExtra, when non-nil, contributes additional metrics to the
	// GET /metrics snapshot (the cluster coordinator injects its cluster.*
	// counters through it). It runs on the request path, so it must be
	// safe for concurrent use.
	MetricsExtra func(reg *telemetry.Registry)
	// Logger receives structured request/job records; nil disables logging
	// entirely (the nil check is the whole cost).
	Logger *slog.Logger
	// StartUnready makes /readyz answer 503 until SetReady(true). A cluster
	// worker starts unready and flips once registered with its coordinator,
	// so a smoke script polling /readyz never races registration.
	StartUnready bool
}

// Server is the polyflowd HTTP handler plus its job registry.
type Server struct {
	pool         *jobqueue.Pool
	ownPool      bool
	cache        *artifact.Cache
	runner       Runner
	maxJobs      int
	upstream     *Client
	metricsExtra func(reg *telemetry.Registry)
	logger       *slog.Logger
	hists        *telemetry.HistSet
	ready        atomic.Bool
	mux          *http.ServeMux

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing and eviction
	seq   int64

	stop     chan struct{}
	stopOnce sync.Once

	m counters
}

// counters are the server-side metrics, atomic so handlers and workers can
// bump them concurrently; /metrics snapshots them into a fresh telemetry
// registry at dump time.
type counters struct {
	httpRequests     atomic.Int64
	submitted        atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	succeeded        atomic.Int64
	failed           atomic.Int64
	canceled         atomic.Int64
	cacheHits        atomic.Int64
	sseStreams       atomic.Int64

	// Trace provenance: how benchmark preparation obtained each workload's
	// trace (decode-once accounting), plus /v1/traces fetches served.
	traceEmuDecodes      atomic.Int64
	traceArtifactHits    atomic.Int64
	traceMemoHits        atomic.Int64
	tracesServed         atomic.Int64
	traceUpstreamFetches atomic.Int64
}

// New builds the server. Call Close when done; it drains the pool.
func New(cfg Config) (*Server, error) {
	s := &Server{
		pool:         cfg.Pool,
		cache:        cfg.Cache,
		runner:       cfg.Runner,
		maxJobs:      cfg.MaxJobs,
		upstream:     cfg.TraceUpstream,
		metricsExtra: cfg.MetricsExtra,
		logger:       cfg.Logger,
		hists:        telemetry.NewHistSet(),
		jobs:         map[string]*job{},
		stop:         make(chan struct{}),
	}
	s.ready.Store(!cfg.StartUnready)
	if s.pool == nil {
		s.pool = jobqueue.New(jobqueue.Config{})
		s.ownPool = true
	}
	if s.cache == nil {
		c, err := artifact.New(artifact.Options{})
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	if s.maxJobs <= 0 {
		s.maxJobs = 4096
	}
	if s.runner == nil {
		s.runner = s.simulate
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs", s.handleList)
	s.route("GET /v1/jobs/{id}", s.handleStatus)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/attrib", s.handleAttrib)
	s.route("GET /v1/jobs/{id}/events", s.handleEvents)
	s.route("GET /v1/jobs/{id}/spans", s.handleSpans)
	s.route("GET /v1/traces/{bench}", s.handleTrace)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	return s, nil
}

// httpLatencyBounds and phaseBounds are the millisecond histogram edges for
// per-endpoint and per-phase latencies.
var (
	httpLatencyBounds = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	phaseBounds       = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
)

// route registers a handler and wraps it with a per-endpoint latency
// histogram keyed by the route pattern (for the SSE endpoint the recorded
// latency is the stream's lifetime).
func (s *Server) route(pattern string, h http.HandlerFunc) {
	name := "server.http.latency_ms{" + telemetry.PromLabel("route", pattern) + "}"
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.hists.Observe(name, httpLatencyBounds, time.Since(start).Milliseconds())
	})
}

// SetReady flips the /readyz answer; a cluster worker turns ready only
// after its coordinator registration succeeds.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.httpRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Pool exposes the scheduling pool, so a daemon can share it with figure
// regeneration (harness.Options.Pool).
func (s *Server) Pool() *jobqueue.Pool { return s.pool }

// Cache exposes the artifact cache.
func (s *Server) Cache() *artifact.Cache { return s.cache }

// Drain stops intake (submissions answer 503) and waits for accepted jobs
// to finish; when ctx expires first the remainder is canceled. SSE streams
// are closed. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stop) })
	return s.pool.Drain(ctx)
}

// Close drains with no deadline and, when the pool is owned, stops its
// workers.
func (s *Server) Close() {
	s.Drain(context.Background())
	if s.ownPool {
		s.pool.Close()
	}
}

// bench loads one prepared benchmark via the decode-once path: the trace
// comes from the process memo, a stored polyflow-trace/1 artifact, or —
// exactly once per (workload, cache) — a fresh emulator run whose product
// is then stored. The provenance counters feed /metrics, which the CI
// server-smoke asserts on: two jobs for one workload must show a single
// emulator decode.
func (s *Server) bench(ctx context.Context, name string) (*speculate.Bench, error) {
	if s.upstream != nil {
		end := obs.StartSpan(ctx, "trace_fetch")
		s.prefetchTrace(name)
		end.End("bench", name)
	}
	end := obs.StartSpan(ctx, "bench_load")
	b, src, err := speculate.LoadCached(name, s.cache)
	if err != nil {
		end.End("bench", name, "error", "true")
		return nil, err
	}
	source := "unknown"
	switch src {
	case speculate.LoadEmulated:
		s.m.traceEmuDecodes.Add(1)
		source = "emulated"
	case speculate.LoadTraceArtifact:
		s.m.traceArtifactHits.Add(1)
		source = "artifact"
	case speculate.LoadMemoized:
		s.m.traceMemoHits.Add(1)
		source = "memo"
	}
	end.End("bench", name, "source", source)
	return b, nil
}

// prefetchTrace pulls the workload's encoded trace from the upstream
// daemon into the local artifact cache when it is not already present, so
// the LoadCached that follows resolves by decoding the stored artifact
// instead of running the emulator. Singleflight in GetOrCompute dedups
// concurrent fetches of one workload; any failure is non-fatal — the bench
// simply falls back to local emulation.
func (s *Server) prefetchTrace(name string) {
	if s.upstream == nil {
		return
	}
	w, ok := workloads.ByName(name)
	if !ok {
		return
	}
	key, err := artifact.NewTraceKey(w.Name, w.SHA(), w.MaxInstrs)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	s.cache.GetOrCompute(ctx, key.Hash(), func(ctx context.Context) ([]byte, error) {
		data, err := s.upstream.Trace(ctx, name)
		if err == nil {
			s.m.traceUpstreamFetches.Add(1)
		}
		return data, err
	})
}

// handleTrace serves a workload's serialized polyflow-trace/1 artifact, so
// a remote worker can fetch the decoded trace instead of re-emulating
// (`polyflow -trace-in` consumes the bytes). The ETag is the artifact's
// content hash.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("bench")
	if _, err := s.bench(r.Context(), name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	data, hash, err := speculate.TraceBytes(name, s.cache)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.m.tracesServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Header().Set("X-Trace-Schema", tracestore.Schema)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// baseConfig is the canonical machine configuration for the named runnable
// policy — the same one the harness figure grids use, so server jobs and
// `experiments -cache-dir` runs share cache entries.
func baseConfig(policy string) machine.Config {
	if policy == "superscalar" {
		return machine.SuperscalarConfig()
	}
	return machine.PolyFlowConfig()
}

// simulate is the default Runner: the canonical simulation pipeline behind
// the artifact cache. The compute path always attaches attribution, so
// every stored artifact carries its report; a cache hit decodes to bytes
// identical to a fresh run (internal/artifact's correctness sweep holds the
// two paths equal).
func (s *Server) simulate(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
	b, err := s.bench(ctx, req.Bench)
	if err != nil {
		return nil, false, err
	}
	baseCfg := baseConfig(req.Policy)
	baseCfg.SampleInterval = req.SampleInterval
	mask, err := machine.ParseSpawnMask(req.SpawnMask)
	if err != nil {
		return nil, false, err
	}
	baseCfg.SpawnMask = mask
	key, err := artifact.NewSimKey(b.Name, b.SourceSHA, b.MaxInstrs, req.Policy, baseCfg)
	if err != nil {
		return nil, false, err
	}
	// Spans are recorded against the submitting request's trace even inside
	// the singleflighted compute (a deduped concurrent caller simply sees a
	// cache_lookup hit without inner spans).
	spanCtx := ctx
	compute := func(ctx context.Context) ([]byte, error) {
		cfg := baseCfg
		if progress != nil {
			cfg.OnSample = progress
		}
		tbl := attrib.NewTable()
		cfg.Attribution = tbl
		endSim := obs.StartSpan(spanCtx, "simulate")
		res, err := b.RunNamedContext(ctx, req.Policy, cfg)
		if err != nil {
			endSim.End("error", "true")
			return nil, err
		}
		endSim.End("cycles", strconv.FormatInt(res.Cycles, 10))
		if err := machine.VerifyAttribution(tbl, res); err != nil {
			return nil, err
		}
		rep := attrib.NewReport(tbl, b.Name, req.Policy, res.Config, res.Cycles, res.Retired)
		endEnc := obs.StartSpan(spanCtx, "artifact_encode")
		data, err := artifact.EncodeSim(&artifact.SimArtifact{Key: key, Result: res, Attrib: rep})
		endEnc.End()
		return data, err
	}
	endLookup := obs.StartSpan(ctx, "cache_lookup")
	data, hit, err := s.cache.GetOrCompute(ctx, key.Hash(), compute)
	endLookup.End("hit", strconv.FormatBool(hit))
	return data, hit, err
}

// validate rejects malformed requests before they consume a queue slot.
func validate(req Request) error {
	okBench := false
	for _, n := range speculate.AllWorkloadNames() {
		if n == req.Bench {
			okBench = true
			break
		}
	}
	if !okBench {
		return fmt.Errorf("unknown bench %q (have %v)", req.Bench, speculate.AllWorkloadNames())
	}
	okPolicy := false
	for _, n := range speculate.PolicyNames() {
		if n == req.Policy {
			okPolicy = true
			break
		}
	}
	if !okPolicy {
		return fmt.Errorf("unknown policy %q (have %v)", req.Policy, speculate.PolicyNames())
	}
	if req.SampleInterval < 0 {
		return fmt.Errorf("negative sample_interval %d", req.SampleInterval)
	}
	if req.SpawnMask != "" {
		if req.Policy == "superscalar" {
			return fmt.Errorf("spawn_mask is meaningless for the superscalar baseline (no spawns to suppress)")
		}
		if _, err := machine.ParseSpawnMask(req.SpawnMask); err != nil {
			return fmt.Errorf("bad spawn_mask: %w", err)
		}
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := validate(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Every job is traced. A caller-supplied X-Polyflow-Trace ID (the
	// cluster coordinator forwards its own) joins this job to a wider
	// request; otherwise the job gets a fresh ID. Local spans also feed the
	// per-phase latency histograms.
	tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
	tr.OnRecord(func(sp obs.Span) {
		if sp.Host == "" {
			s.hists.Observe("server.phase."+sp.Name+"_ms", phaseBounds, sp.Duration().Milliseconds())
		}
	})
	j := s.register(req, tr)
	h, err := s.pool.Submit(jobqueue.Job{
		ID:       j.id,
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Fn: func(ctx context.Context) error {
			j.setRunning()
			data, hit, err := s.runner(obs.With(ctx, tr), req, j.onProgress)
			if err != nil {
				return err
			}
			j.setResult(data, hit)
			if hit {
				s.m.cacheHits.Add(1)
			}
			return nil
		},
	})
	if err != nil {
		s.unregister(j.id)
		switch {
		case errors.Is(err, jobqueue.ErrQueueFull):
			s.m.rejectedFull.Add(1)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, jobqueue.ErrDraining):
			s.m.rejectedDraining.Add(1)
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		if s.logger != nil {
			s.logger.Warn("job rejected", "trace_id", tr.ID(), "bench", req.Bench, "policy", req.Policy, "error", err.Error())
		}
		return
	}
	j.handle = h
	s.m.submitted.Add(1)
	if s.logger != nil {
		s.logger.Info("job submitted", "job_id", j.id, "trace_id", tr.ID(), "bench", req.Bench, "policy", req.Policy, "priority", req.Priority)
	}
	go s.watch(j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// watch finalizes the record when the pool settles the job, counting the
// outcome and closing event streams.
func (s *Server) watch(j *job) {
	<-j.handle.Done()
	switch j.handle.State() {
	case jobqueue.Succeeded:
		s.m.succeeded.Add(1)
	case jobqueue.Canceled:
		s.m.canceled.Add(1)
	default:
		s.m.failed.Add(1)
	}
	j.finish(j.handle.State(), j.handle.Err())
	if s.logger != nil {
		st := j.status()
		attrs := []any{"job_id", j.id, "trace_id", st.TraceID, "state", st.State, "duration_ms", st.DurationMS, "cache_hit", st.CacheHit}
		if st.Error != "" {
			attrs = append(attrs, "error", st.Error)
		}
		s.logger.Info("job finished", attrs...)
	}
}

// register allocates a job record, evicting the oldest terminal record
// beyond the retention bound.
func (s *Server) register(req Request, tr *obs.Trace) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := newJob(fmt.Sprintf("j%06d-%s-%s", s.seq, req.Bench, req.Policy), req, tr)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.maxJobs {
		evicted := false
		for i, id := range s.order {
			old := s.jobs[id]
			if old.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is still live
		}
	}
	return j
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, s.jobs[s.order[i]].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if j.handle != nil {
		j.handle.Cancel()
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	data, st := j.result()
	if st != jobqueue.Succeeded {
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s, result available once succeeded", st))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleAttrib(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	data, st := j.result()
	if st != jobqueue.Succeeded {
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s, report available once succeeded", st))
		return
	}
	art, err := artifact.DecodeSim(data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if art.Attrib == nil {
		writeError(w, http.StatusNotFound, errors.New("artifact carries no attribution report"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	art.Attrib.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	status := "ok"
	code := http.StatusOK
	if st.Draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"queued":  st.Queued,
		"running": st.Running,
	})
}

// handleReadyz is the traffic-readiness probe, distinct from /healthz
// (liveness): it answers 503 until the daemon is fully wired (a cluster
// worker stays unready until its coordinator registration lands) and again
// once draining starts. Smoke scripts and load balancers poll this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	status, code := "ready", http.StatusOK
	switch {
	case st.Draining:
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load():
		status, code = "starting", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status})
}

// handleSpans serves a job's trace: by default Chrome trace-event JSON
// (loadable in Perfetto), with ?format=raw for the obs.Export form the
// coordinator ingests when joining worker spans into its own timeline.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if j.trace == nil {
		writeError(w, http.StatusNotFound, errors.New("job has no trace"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.URL.Query().Get("format") == "raw" {
		j.trace.WriteJSON(w)
		return
	}
	j.trace.WriteChrome(w)
}

// handleMetrics renders the server, pool and cache metrics as a telemetry
// summary. The atomics are snapshotted into a fresh registry at dump time —
// registry counters themselves are single-writer and must not be bumped
// from concurrent handlers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := telemetry.NewRegistry()
	set := func(name string, v int64) { c := reg.Counter(name); c.Add(v) }
	set("server.http.requests", s.m.httpRequests.Load())
	set("server.jobs.submitted", s.m.submitted.Load())
	set("server.jobs.rejected_full", s.m.rejectedFull.Load())
	set("server.jobs.rejected_draining", s.m.rejectedDraining.Load())
	set("server.jobs.succeeded", s.m.succeeded.Load())
	set("server.jobs.failed", s.m.failed.Load())
	set("server.jobs.canceled", s.m.canceled.Load())
	set("server.jobs.cache_hits", s.m.cacheHits.Load())
	set("server.sse.streams", s.m.sseStreams.Load())
	set("server.traces.emu_decodes", s.m.traceEmuDecodes.Load())
	set("server.traces.artifact_hits", s.m.traceArtifactHits.Load())
	set("server.traces.memo_hits", s.m.traceMemoHits.Load())
	set("server.traces.served", s.m.tracesServed.Load())
	set("server.traces.upstream_fetches", s.m.traceUpstreamFetches.Load())

	ps := s.pool.Stats()
	reg.Gauge("pool.workers").Set(int64(ps.Workers))
	reg.Gauge("pool.queued").Set(int64(ps.Queued))
	reg.Gauge("pool.running").Set(int64(ps.Running))
	set("pool.succeeded", ps.Succeeded)
	set("pool.failed", ps.Failed)
	set("pool.canceled", ps.Canceled)
	set("pool.rejected", ps.Rejected)

	cs := s.cache.Stats()
	set("cache.mem_hits", cs.MemHits)
	set("cache.disk_hits", cs.DiskHits)
	set("cache.misses", cs.Misses)
	set("cache.evictions", cs.Evictions)
	reg.Gauge("cache.mem_entries").Set(int64(cs.MemEntries))
	reg.Gauge("cache.mem_bytes").Set(cs.MemBytes)

	if s.metricsExtra != nil {
		s.metricsExtra(reg)
	}
	s.hists.Fill(reg)

	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	reg.WriteSummary(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
