package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers from a scripted status sequence, then 200s forever.
type flakyHandler struct {
	codes []int
	hits  atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(h.hits.Add(1)) - 1
	if n < len(h.codes) {
		code := h.codes[n]
		if code != http.StatusOK {
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"injected"}`))
			return
		}
	}
	w.Write([]byte(`{"ok":true}`))
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestRetryRecoversFrom5xx(t *testing.T) {
	h := &flakyHandler{codes: []int{500, 502}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry(4)}
	var out struct {
		OK bool `json:"ok"`
	}
	code, err := c.do(context.Background(), http.MethodGet, "/", nil, &out)
	if err != nil || code != http.StatusOK || !out.OK {
		t.Fatalf("do = %d, %v, ok=%v; want 200 after retries", code, err, out.OK)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (500, 502, 200)", got)
	}
}

func TestRetryRecoversFrom429(t *testing.T) {
	h := &flakyHandler{codes: []int{http.StatusTooManyRequests}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry(3)}
	if code, err := c.do(context.Background(), http.MethodGet, "/", nil, nil); err != nil || code != http.StatusOK {
		t.Fatalf("do = %d, %v; want 200 after a 429", code, err)
	}
	if got := h.hits.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestRetryDoesNotRetry4xx(t *testing.T) {
	h := &flakyHandler{codes: []int{http.StatusBadRequest, http.StatusOK}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry(5)}
	code, err := c.do(context.Background(), http.MethodGet, "/", nil, nil)
	if err == nil || code != http.StatusBadRequest {
		t.Fatalf("do = %d, %v; want an immediate 400 error", code, err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (client errors are permanent)", got)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	h := &flakyHandler{codes: []int{503, 503, 503, 503, 503}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{Base: srv.URL, Retry: fastRetry(3)}
	code, err := c.do(context.Background(), http.MethodGet, "/", nil, nil)
	if err == nil || code != http.StatusServiceUnavailable {
		t.Fatalf("do = %d, %v; want 503 after exhausting retries", code, err)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestRetryZeroPolicyMeansOneAttempt(t *testing.T) {
	// The zero value must preserve the historical single-attempt behavior:
	// cmd/polyload's own 429 loop depends on seeing the first 429.
	h := &flakyHandler{codes: []int{http.StatusTooManyRequests}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{Base: srv.URL}
	code, err := c.do(context.Background(), http.MethodGet, "/", nil, nil)
	if err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("do = %d, %v; want the raw 429", code, err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestRetryConnectionRefused(t *testing.T) {
	// Reserve a port, close the listener, and bring a real server up on
	// the same address while the client is retrying: the first attempts
	// are refused at the transport layer, a later one lands.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(60 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the test tolerates exhaustion below
		}
		srv := &http.Server{Handler: &flakyHandler{}}
		go srv.Serve(ln2)
	}()

	c := &Client{Base: "http://" + addr, Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 50 * time.Millisecond}}
	code, err := c.do(context.Background(), http.MethodGet, "/", nil, nil)
	if err != nil {
		t.Skipf("server never came back on %s (port raced away): %v", addr, err)
	}
	if code != http.StatusOK {
		t.Fatalf("do = %d, want 200 once the server is up", code)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	h := &flakyHandler{codes: []int{503, 503, 503, 503}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := &Client{Base: srv.URL, Retry: RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}}
	start := time.Now()
	if _, err := c.do(ctx, http.MethodGet, "/", nil, nil); err == nil {
		t.Fatal("do: want error when ctx expires mid-backoff")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("do blocked %v past its context", elapsed)
	}
}
