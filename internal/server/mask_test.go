package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/artifact"
)

func TestSpawnMaskValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{}`), nil)})
	ctx := context.Background()

	if _, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "superscalar", SpawnMask: "0x40:loop"}); err == nil || code != http.StatusBadRequest {
		t.Fatalf("superscalar+mask: code=%d err=%v, want 400", code, err)
	}
	if _, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms", SpawnMask: "40:loop"}); err == nil || code != http.StatusBadRequest {
		t.Fatalf("unparseable mask: code=%d err=%v, want 400", code, err)
	}
	if _, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms", SpawnMask: "0x40:root"}); err == nil || code != http.StatusBadRequest {
		t.Fatalf("root-kind mask: code=%d err=%v, want 400", code, err)
	}
	// A well-formed mask on a spawning policy is accepted, and the status
	// echoes it back for observability.
	st, code, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms", SpawnMask: "0x40:loop"})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("valid mask rejected: code=%d err=%v", code, err)
	}
	if st.SpawnMask != "0x40:loop" {
		t.Fatalf("status does not echo the mask: %+v", st)
	}
}

// TestSpawnMaskCacheIdentity pins the mask's artifact-cache contract
// through the daemon: the same semantic mask — even spelled in a different
// entry order — dedups to one cache entry, while distinct masks (and the
// maskless run) never collide.
func TestSpawnMaskCacheIdentity(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Cache: cache})
	ctx := context.Background()

	submit := func(mask string) (Status, []byte) {
		t.Helper()
		st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms", SpawnMask: mask})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != "succeeded" {
			t.Fatalf("mask %q: state %q (%s)", mask, fin.State, fin.Error)
		}
		data, err := c.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return fin, data
	}

	cold, coldBytes := submit("0x40:loop,0x100:hammock")
	if cold.CacheHit {
		t.Fatal("cold masked job reported a cache hit")
	}
	// Same mask, non-canonical spelling: must hit and serve identical bytes.
	warm, warmBytes := submit("0x100:hammock,0x040:loop")
	if !warm.CacheHit {
		t.Fatal("same semantic mask missed the cache")
	}
	if string(coldBytes) != string(warmBytes) {
		t.Fatal("cached masked artifact differs from the cold run")
	}
	// A different mask is a different identity.
	other, otherBytes := submit("0x40:loop")
	if other.CacheHit {
		t.Fatal("a distinct mask hit the cache")
	}
	if string(otherBytes) == string(coldBytes) {
		t.Fatal("distinct masks served identical artifacts")
	}
	// And the maskless run is its own identity too.
	plain, _ := submit("")
	if plain.CacheHit {
		t.Fatal("maskless run collided with a masked entry")
	}
}
