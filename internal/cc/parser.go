package cc

// Recursive-descent parser with precedence climbing for expressions.

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind != tokEOF && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errf(p.cur().line, "expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errf(t.line, "expected identifier, got %s", t)
	}
	p.pos++
	return t, nil
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{}
	for p.cur().kind != tokEOF {
		switch {
		case p.accept("var"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, g)
		case p.accept("func"):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		default:
			return nil, errf(p.cur().line, "expected 'var' or 'func' at top level, got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) parseGlobal() (*globalDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &globalDecl{name: name.text, size: 1, line: name.line}
	if p.accept("[") {
		sz := p.cur()
		if sz.kind != tokNumber || sz.num <= 0 {
			return nil, errf(sz.line, "array size must be a positive number")
		}
		p.pos++
		g.size = int(sz.num)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	return g, p.expect(";")
}

func (p *parser) parseFunc() (*funcDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &funcDecl{name: name.text, line: name.line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		if len(f.params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, prm.text)
		if len(f.params) > 4 {
			return nil, errf(prm.line, "at most 4 parameters are supported")
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) parseBlock() (*blockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case t.text == "{":
		return p.parseBlock()
	case p.accept("var"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &varDecl{name: name.text, line: name.line}
		if p.accept("=") {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expect(";")
	case p.accept("if"):
		return p.parseIf(t.line)
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case p.accept("for"):
		return p.parseFor(t.line)
	case p.accept("break"):
		return &breakStmt{line: t.line}, p.expect(";")
	case p.accept("continue"):
		return &continueStmt{line: t.line}, p.expect(";")
	case p.accept("return"):
		r := &returnStmt{line: t.line}
		if p.cur().text != ";" {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			r.value = e
		}
		return r, p.expect(";")
	default:
		s, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// parseSimple parses an assignment or expression statement (no semicolon):
// the form shared by statements and for-clauses.
func (p *parser) parseSimple() (stmt, error) {
	t := p.cur()
	if t.kind == tokIdent {
		// Lookahead for "ident =" or "ident [ expr ] =".
		save := p.pos
		name, _ := p.expectIdent()
		var index expr
		if p.accept("[") {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			index = e
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.accept("=") {
			v, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			return &assignStmt{name: name.text, index: index, value: v, line: t.line}, nil
		}
		p.pos = save // not an assignment: reparse as an expression
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	return &exprStmt{e: e, line: t.line}, nil
}

func (p *parser) parseIf(line int) (stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then, line: line}
	if p.accept("else") {
		if p.cur().text == "if" {
			p.pos++
			els, err := p.parseIf(p.cur().line)
			if err != nil {
				return nil, err
			}
			s.els = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.els = els
		}
	}
	return s, nil
}

func (p *parser) parseFor(line int) (stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &forStmt{line: line}
	if !p.accept(";") {
		init, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		f.init = init
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		f.cond = cond
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.cur().text != ")" {
		post, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		f.post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// parseExpr implements precedence climbing above minPrec.
func (p *parser) parseExpr(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, isOp := precedence[op.text]
		if op.kind != tokPunct || !isOp || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: op.text, x: lhs, y: rhs, line: op.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return &numberExpr{v: t.num, line: t.line}, nil
	case t.kind == tokIdent:
		switch {
		case p.accept("("):
			c := &callExpr{name: t.text, line: t.line}
			for !p.accept(")") {
				if len(c.args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				c.args = append(c.args, a)
				if len(c.args) > 4 {
					return nil, errf(t.line, "at most 4 arguments are supported")
				}
			}
			return c, nil
		case p.accept("["):
			idx, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: idx, line: t.line}, nil
		default:
			return &identExpr{name: t.text, line: t.line}, nil
		}
	case t.text == "(":
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	default:
		return nil, errf(t.line, "unexpected %s in expression", t)
	}
}
