package cc

// Constant folding and branch simplification. The pass runs on the AST
// before code generation: constant subexpressions collapse to literals,
// algebraic identities simplify, statically-decided ifs drop the dead arm,
// and while(0) loops disappear. Besides shrinking code, this mirrors what
// a real compiler hands the postdominator analysis: the branches that
// remain are the genuinely dynamic ones.

// foldProgram folds every function body in place.
func foldProgram(p *program) {
	for _, f := range p.funcs {
		f.body = foldStmt(f.body).(*blockStmt)
	}
}

func foldStmt(s stmt) stmt {
	switch n := s.(type) {
	case *blockStmt:
		out := &blockStmt{}
		for _, c := range n.stmts {
			fc := foldStmt(c)
			if fc != nil {
				out.stmts = append(out.stmts, fc)
			}
		}
		return out
	case *varDecl:
		if n.init != nil {
			n.init = foldExpr(n.init)
		}
		return n
	case *assignStmt:
		if n.index != nil {
			n.index = foldExpr(n.index)
		}
		n.value = foldExpr(n.value)
		return n
	case *ifStmt:
		n.cond = foldExpr(n.cond)
		n.then = foldStmt(n.then)
		if n.els != nil {
			n.els = foldStmt(n.els)
		}
		if c, ok := n.cond.(*numberExpr); ok {
			// Statically decided: keep only the live arm. (Dead arms
			// cannot declare locals that survive — locals are hoisted
			// per function before codegen, so dropping the arm is safe.)
			if c.v != 0 {
				return n.then
			}
			if n.els != nil {
				return n.els
			}
			return &blockStmt{}
		}
		return n
	case *whileStmt:
		n.cond = foldExpr(n.cond)
		n.body = foldStmt(n.body)
		if c, ok := n.cond.(*numberExpr); ok && c.v == 0 {
			return &blockStmt{}
		}
		return n
	case *forStmt:
		if n.init != nil {
			n.init = foldStmt(n.init)
		}
		if n.cond != nil {
			n.cond = foldExpr(n.cond)
			if c, ok := n.cond.(*numberExpr); ok && c.v == 0 {
				// Loop never entered; the init may still have effects.
				if n.init != nil {
					return n.init
				}
				return &blockStmt{}
			}
		}
		if n.post != nil {
			n.post = foldStmt(n.post)
		}
		n.body = foldStmt(n.body)
		return n
	case *returnStmt:
		if n.value != nil {
			n.value = foldExpr(n.value)
		}
		return n
	case *exprStmt:
		n.e = foldExpr(n.e)
		// A side-effect-free expression statement is dead.
		if pure(n.e) {
			return nil
		}
		return n
	default:
		return s
	}
}

// pure reports whether evaluating e has no side effects (no calls; loads
// are considered pure).
func pure(e expr) bool {
	switch n := e.(type) {
	case *numberExpr, *identExpr:
		return true
	case *indexExpr:
		return pure(n.index)
	case *unaryExpr:
		return pure(n.x)
	case *binaryExpr:
		return pure(n.x) && pure(n.y)
	default:
		return false
	}
}

func foldExpr(e expr) expr {
	switch n := e.(type) {
	case *unaryExpr:
		n.x = foldExpr(n.x)
		if c, ok := n.x.(*numberExpr); ok {
			switch n.op {
			case "-":
				return &numberExpr{v: -c.v, line: n.line}
			case "~":
				return &numberExpr{v: ^c.v, line: n.line}
			case "!":
				return &numberExpr{v: b2i(c.v == 0), line: n.line}
			}
		}
		return n
	case *indexExpr:
		n.index = foldExpr(n.index)
		return n
	case *callExpr:
		for i := range n.args {
			n.args[i] = foldExpr(n.args[i])
		}
		return n
	case *binaryExpr:
		n.x = foldExpr(n.x)
		n.y = foldExpr(n.y)
		cx, xConst := n.x.(*numberExpr)
		cy, yConst := n.y.(*numberExpr)
		if xConst && yConst {
			if v, ok := evalConst(n.op, cx.v, cy.v); ok {
				return &numberExpr{v: v, line: n.line}
			}
		}
		// Short-circuit with a constant left side.
		if xConst && n.op == "&&" {
			if cx.v == 0 {
				return &numberExpr{v: 0, line: n.line}
			}
			return normalizeBool(n.y, n.line)
		}
		if xConst && n.op == "||" {
			if cx.v != 0 {
				return &numberExpr{v: 1, line: n.line}
			}
			return normalizeBool(n.y, n.line)
		}
		// Algebraic identities (right-side constants; evaluation order of
		// the remaining operand is preserved).
		if yConst {
			switch {
			case cy.v == 0 && (n.op == "+" || n.op == "-" || n.op == "|" || n.op == "^" || n.op == "<<" || n.op == ">>"):
				return n.x
			case cy.v == 1 && (n.op == "*" || n.op == "/"):
				return n.x
			case cy.v == 0 && n.op == "*" && pure(n.x):
				return &numberExpr{v: 0, line: n.line}
			case cy.v == 0 && n.op == "&" && pure(n.x):
				return &numberExpr{v: 0, line: n.line}
			}
		}
		if xConst {
			switch {
			case cx.v == 0 && n.op == "+":
				return n.y
			case cx.v == 1 && n.op == "*":
				return n.y
			case cx.v == 0 && (n.op == "*" || n.op == "&") && pure(n.y):
				return &numberExpr{v: 0, line: n.line}
			}
		}
		return n
	default:
		return e
	}
}

// normalizeBool wraps e so its value is exactly 0 or 1, matching the
// semantics of && and || results.
func normalizeBool(e expr, line int) expr {
	if c, ok := e.(*numberExpr); ok {
		return &numberExpr{v: b2i(c.v != 0), line: line}
	}
	// !!e
	return &unaryExpr{op: "!", x: &unaryExpr{op: "!", x: e, line: line}, line: line}
}

func evalConst(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, true // the ISA defines x/0 = 0
		}
		if b == -1 {
			return -a, true // MinInt64/-1 wraps like the ISA, no Go panic
		}
		return a / b, true
	case "%":
		if b == 0 || b == -1 {
			return 0, true
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint64(b) & 63), true
	case ">>":
		return a >> (uint64(b) & 63), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "&&":
		return b2i(a != 0 && b != 0), true
	case "||":
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
