package cc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/isa"
)

// countOps counts occurrences of a mnemonic in generated assembly.
func countOps(t *testing.T, src, mnem string) int {
	t.Helper()
	out, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && f[0] == mnem {
			n++
		}
	}
	return n
}

func TestConstantExpressionsFold(t *testing.T) {
	src := "func main() { return 2 + 3 * 4 - (10 / 2); }"
	if got := countOps(t, src, "add"); got != 0 {
		t.Errorf("constant adds survived folding: %d", got)
	}
	if got := countOps(t, src, "mul"); got != 0 {
		t.Errorf("constant muls survived folding: %d", got)
	}
	if got := runMain(t, src); got != 9 {
		t.Errorf("folded result = %d, want 9", got)
	}
}

func TestDeadBranchElimination(t *testing.T) {
	src := `
func main() {
  if (1 == 2) { return 111; }
  if (3 > 2) { return 42; } else { return 222; }
}`
	// The statically-decided branches leave no conditional branches.
	if got := countOps(t, src, "beq") + countOps(t, src, "bne"); got != 0 {
		t.Errorf("dead branches survived: %d conditional branches", got)
	}
	if got := runMain(t, src); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestWhileZeroElimination(t *testing.T) {
	src := "var g; func main() { while (0) { g = 1; } return g; }"
	if got := countOps(t, src, "beq") + countOps(t, src, "bne"); got != 0 {
		t.Errorf("while(0) survived")
	}
	if got := runMain(t, src); got != 0 {
		t.Errorf("result = %d", got)
	}
}

func TestForFalseKeepsInit(t *testing.T) {
	src := "var g; func main() { for (g = 7; 0; g = g + 1) { g = 99; } return g; }"
	if got := runMain(t, src); got != 7 {
		t.Errorf("for(;0;) init lost: %d", got)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	cases := []string{
		"func main() { var x = 5; return x + 0; }",
		"func main() { var x = 5; return 0 + x; }",
		"func main() { var x = 5; return x * 1; }",
		"func main() { var x = 5; return x / 1; }",
		"func main() { var x = 5; return x << 0; }",
	}
	for _, src := range cases {
		if countOps(t, src, "add")+countOps(t, src, "mul")+
			countOps(t, src, "div")+countOps(t, src, "sllv") > 0 {
			t.Errorf("identity not simplified in %q", src)
		}
		if got := runMain(t, src); got != 5 {
			t.Errorf("%q = %d, want 5", src, got)
		}
	}
	// x * 0 with a pure x folds to 0.
	z := "func main() { var x = 5; return x * 0; }"
	if countOps(t, z, "mul") != 0 {
		t.Errorf("x*0 not folded")
	}
	if got := runMain(t, z); got != 0 {
		t.Errorf("x*0 = %d", got)
	}
}

func TestImpureExpressionsSurvive(t *testing.T) {
	// bump() has side effects: "bump() * 0" and a dead expression
	// statement "bump();" must still call it; "0 && bump()" must not.
	src := `
var g;
func bump() { g = g + 1; return 1; }
func main() {
  var r = bump() * 0;   // calls bump, result 0
  bump();               // statement with side effect
  r = r + (0 && bump()); // short-circuit: no call
  return g * 10 + r;
}`
	if got := runMain(t, src); got != 20 {
		t.Fatalf("side effects mishandled: %d, want 20", got)
	}
}

func TestConstantShortCircuit(t *testing.T) {
	src := `
var g;
func bump() { g = g + 1; return 7; }
func main() {
  var a = 1 && bump();  // normalizes bump's result to 1
  var b = 1 || bump();  // no call
  var c = 0 || bump();  // normalizes to 1
  return a * 100 + b * 10 + c + g * 1000;
}`
	if got := runMain(t, src); got != 2111 {
		t.Fatalf("constant short-circuit = %d, want 2111", got)
	}
}

// TestQuickFoldEquivalence: folding any constant binary expression agrees
// with the emulated unfolded semantics (via evalConst against the Go
// semantics used to define the ISA).
func TestQuickFoldEquivalence(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="}
	prop := func(a, b int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		v, ok := evalConst(op, int64(a), int64(b))
		if !ok {
			return false
		}
		src := "func main() { var x = " + itoa64(int64(a)) + "; var y = " + itoa64(int64(b)) +
			"; return x " + op + " y; }"
		p, err := CompileAndAssemble(src)
		if err != nil {
			return false
		}
		got, err := execMain(p)
		if err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func execMain(p *isa.Program) (int64, error) {
	m := emu.New(p, 0)
	for !m.Halted && m.Count < 1_000_000 {
		if err := m.Step(nil); err != nil {
			return 0, err
		}
	}
	return m.Regs[isa.V0], nil
}

func itoa64(v int64) string {
	if v < 0 {
		// Avoid unary-minus literals: emit (0 - abs) to keep the lexer
		// simple for MinInt-free int32 inputs.
		return "(0 - " + itoa(-v) + ")"
	}
	return itoa(v)
}
