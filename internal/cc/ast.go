package cc

// AST node definitions. Expressions and statements are small closed sets;
// the codegen switches on the concrete types.

type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
}

type globalDecl struct {
	name string
	size int // cells; 1 for scalars
	line int
}

type funcDecl struct {
	name   string
	params []string
	body   *blockStmt
	line   int
}

// Statements.

type stmt interface{ stmtNode() }

type blockStmt struct {
	stmts []stmt
}

type varDecl struct {
	name string
	init expr // optional
	line int
}

type assignStmt struct {
	name  string
	index expr // nil for scalars
	value expr
	line  int
}

type ifStmt struct {
	cond      expr
	then, els stmt // els may be nil
	line      int
}

type whileStmt struct {
	cond expr
	body stmt
	line int
}

type forStmt struct {
	init, post stmt // may be nil
	cond       expr // may be nil (infinite)
	body       stmt
	line       int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type returnStmt struct {
	value expr // may be nil
	line  int
}

type exprStmt struct {
	e    expr
	line int
}

func (*blockStmt) stmtNode()    {}
func (*varDecl) stmtNode()      {}
func (*assignStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*returnStmt) stmtNode()   {}
func (*exprStmt) stmtNode()     {}

// Expressions.

type expr interface{ exprNode() }

type numberExpr struct {
	v    int64
	line int
}

type identExpr struct {
	name string
	line int
}

type indexExpr struct {
	name  string
	index expr
	line  int
}

type callExpr struct {
	name string
	args []expr
	line int
}

type unaryExpr struct {
	op   string // "-", "!", "~"
	x    expr
	line int
}

type binaryExpr struct {
	op   string
	x, y expr
	line int
}

func (*numberExpr) exprNode() {}
func (*identExpr) exprNode()  {}
func (*indexExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*unaryExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}

// Binary operator precedence (higher binds tighter). "||" and "&&" are
// handled with short-circuit control flow in codegen.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}
