package cc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// runMain compiles and executes a program, returning main's return value
// (left in $v0 by the generated epilogue before halt).
func runMain(t *testing.T, src string) int64 {
	t.Helper()
	p, err := CompileAndAssemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p, 0)
	for !m.Halted && m.Count < 5_000_000 {
		if err := m.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Halted {
		t.Fatal("compiled program did not halt")
	}
	return m.Regs[isa.V0]
}

func TestArithmetic(t *testing.T) {
	cases := map[string]int64{
		"return 2 + 3 * 4;":     14,
		"return (2 + 3) * 4;":   20,
		"return 10 - 7;":        3,
		"return 7 / 2;":         3,
		"return 7 % 3;":         1,
		"return -5;":            -5,
		"return ~0;":            -1,
		"return 1 << 5;":        32,
		"return -16 >> 2;":      -4,
		"return 12 & 10;":       8,
		"return 12 | 3;":        15,
		"return 12 ^ 10;":       6,
		"return 0x10;":          16,
		"return 3 < 4;":         1,
		"return 4 < 3;":         0,
		"return 4 <= 4;":        1,
		"return 5 > 4;":         1,
		"return 4 >= 5;":        0,
		"return 4 == 4;":        1,
		"return 4 != 4;":        0,
		"return !0;":            1,
		"return !7;":            0,
		"return 1 + 2 == 3;":    1,
		"return 2 * 3 + 4 * 5;": 26,
		"return 100 - 10 - 5;":  85, // left associative
		"return 1 << 3 >> 1;":   4,
	}
	for body, want := range cases {
		src := "func main() { " + body + " }"
		if got := runMain(t, src); got != want {
			t.Errorf("%s = %d, want %d", body, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// g counts side effects: the right operand must not evaluate when the
	// left decides.
	src := `
var g;
func bump() { g = g + 1; return 1; }
func main() {
  var r;
  r = 0 && bump();     // no bump
  r = r + (1 && bump()); // bump, r += 1
  r = r + (1 || bump()); // no bump, r += 1
  r = r + (0 || bump()); // bump, r += 1
  return r * 100 + g;
}`
	if got := runMain(t, src); got != 302 {
		t.Fatalf("short-circuit result = %d, want 302", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
  var i; var acc;
  acc = 0;
  for (i = 0; i < 20; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 14) { break; }
    acc = acc + i;       // 1+3+5+7+9+11+13 = 49
  }
  while (acc > 40) { acc = acc - 10; } // 39
  if (acc == 39) { return acc; } else { return -1; }
}`
	if got := runMain(t, src); got != 39 {
		t.Fatalf("control flow result = %d, want 39", got)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func classify(x) {
  if (x < 0) { return 1; }
  else if (x == 0) { return 2; }
  else if (x < 10) { return 3; }
  else { return 4; }
}
func main() {
  return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	if got := runMain(t, src); got != 1234 {
		t.Fatalf("else-if result = %d, want 1234", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
var total;
var table[16];
func main() {
  var i;
  for (i = 0; i < 16; i = i + 1) { table[i] = i * i; }
  total = 0;
  for (i = 0; i < 16; i = i + 1) { total = total + table[i]; }
  return total;    // sum of squares 0..15 = 1240
}`
	if got := runMain(t, src); got != 1240 {
		t.Fatalf("array result = %d, want 1240", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func gcd(a, b) {
  while (b != 0) { var t; t = b; b = a % b; a = t; }
  return a;
}
func main() { return fib(12) * 1000 + gcd(462, 1071); }`
	if got := runMain(t, src); got != 144*1000+21 {
		t.Fatalf("recursion result = %d, want %d", got, 144*1000+21)
	}
}

func TestCallInExpression(t *testing.T) {
	// Live temporaries must survive across the inner calls.
	src := `
func two() { return 2; }
func three() { return 3; }
func main() { return 100 + two() * 10 + three() + two(); }`
	if got := runMain(t, src); got != 125 {
		t.Fatalf("nested call result = %d, want 125", got)
	}
}

func TestFourParams(t *testing.T) {
	src := `
func combine(a, b, c, d) { return a * 1000 + b * 100 + c * 10 + d; }
func main() { return combine(1, 2, 3, 4); }`
	if got := runMain(t, src); got != 1234 {
		t.Fatalf("four params = %d, want 1234", got)
	}
}

func TestVarInit(t *testing.T) {
	src := `func main() { var x = 6; var y = x * 7; return y; }`
	if got := runMain(t, src); got != 42 {
		t.Fatalf("var init = %d, want 42", got)
	}
}

func TestFallThroughReturnsZero(t *testing.T) {
	src := `
var g;
func side() { g = 5; }
func main() { side(); return g + side(); }`
	if got := runMain(t, src); got != 5 {
		t.Fatalf("void-ish function = %d, want 5", got)
	}
}

func TestDivModByZero(t *testing.T) {
	// The ISA defines division by zero as 0; the compiler inherits it.
	src := `func main() { var z = 0; return 7 / z + 7 % z; }`
	if got := runMain(t, src); got != 0 {
		t.Fatalf("div by zero = %d, want 0", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"func f() { return 1; }":              "no main function",
		"func main() { return x; }":           "undefined variable",
		"func main() { x = 1; }":              "undefined variable",
		"func main() { return f(); }":         "undefined function",
		"func main() { break; }":              "break outside",
		"func main() { continue; }":           "continue outside",
		"func main(a, b, c, d, e) { }":        "at most 4 parameters",
		"var a; var a; func main() { }":       "duplicate global",
		"func main() { var x; var x; }":       "duplicate local",
		"func main() { } func main() { }":     "duplicate function",
		"func main() { return 1 + ; }":        "unexpected",
		"func main() { if (1) { return 1; }":  "unterminated block",
		"var t[0]; func main() { }":           "array size",
		"func main() { var v; return v[2]; }": "not a global array",
		"var g; func main() { g[1] = 2; }":    "not a global array",
		"var a[4]; func main() { return a; }": "needs an index",
		"func main() { return $; }":           "unexpected character",
	}
	for src, wantSub := range cases {
		_, err := Compile(src)
		if wantSub == "" {
			if err != nil {
				t.Errorf("source %q failed: %v", src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("source %q compiled without error", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("source %q: error %q does not mention %q", src, err, wantSub)
		}
	}
}

func TestLeftNestedExpressionsStayShallow(t *testing.T) {
	// Left-nested chains reuse the same stack slot, so arbitrarily long
	// chains compile and evaluate correctly.
	expr := "1"
	want := int64(1)
	for i := int64(2); i <= 40; i++ {
		expr = "(" + expr + " + " + itoa(i) + ")"
		want += i
	}
	if got := runMain(t, "func main() { return "+expr+"; }"); got != want {
		t.Fatalf("long chain = %d, want %d", got, want)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestExpressionTooDeep(t *testing.T) {
	// Ten live temporaries through right-nested non-constant additions
	// (constants would fold away before code generation).
	expr := "x"
	for i := 0; i < 10; i++ {
		expr = "x + (" + expr + ")"
	}
	_, err := Compile("func main() { var x = 1; return " + expr + "; }")
	if err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Fatalf("deep expression error = %v", err)
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Compile("func main() {\n  var x;\n  y = 1;\n}")
	ce, ok := err.(*Error)
	if !ok || ce.Line != 3 {
		t.Fatalf("error = %v, want line 3", err)
	}
}

// TestCompiledControlFlowAnalyzable: the spawn analysis finds the expected
// structures in compiler-generated code — hammocks from if/else and
// short-circuit joins, loopFT from loop latches, procFT from calls.
func TestCompiledControlFlowAnalyzable(t *testing.T) {
	src := `
var data[64];
func work(x) {
  if (x & 1) { x = x * 3 + 1; } else { x = x / 2; }
  return x;
}
func main() {
  var i; var acc;
  acc = 0;
  for (i = 0; i < 500; i = i + 1) {
    acc = acc + work(i & 63);
    if (acc > 100000 && i & 3) { acc = acc - 1000; }
    data[i & 63] = acc;
  }
  return acc;
}`
	p, err := CompileAndAssemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		t.Fatal(err)
	}
	kinds := a.CountByKind()
	if kinds[core.KindHammock] == 0 {
		t.Errorf("no hammocks in compiled if/else: %v", kinds)
	}
	if kinds[core.KindProcFT] == 0 {
		t.Errorf("no procedure fall-throughs at compiled calls: %v", kinds)
	}
	if kinds[core.KindLoopFT] == 0 {
		t.Errorf("no loop fall-throughs at compiled latches: %v", kinds)
	}
	if kinds[core.KindLoop] == 0 {
		t.Errorf("no loop-iteration spawns in compiled loop: %v", kinds)
	}
}
