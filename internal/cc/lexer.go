// Package cc implements a small C-like language compiled to the
// repository's MIPS-like assembly — the compiler substrate of the
// reproduction. The paper's binaries come from a compiler; this one lets
// the postdominator analysis and the PolyFlow machine run on structured,
// compiler-generated control flow (if/else, while, for, break, continue,
// short-circuit booleans, calls) rather than hand-written assembly.
//
// Language summary:
//
//	var g;                 // global scalar (64-bit int)
//	var table[128];        // global array
//	func f(a, b) {         // up to 4 parameters
//	    var x;             // local scalar
//	    x = a * 31 + b;
//	    if (x > 100 && b != 0) { x = x % b; } else { x = -x; }
//	    while (x < 0) { x = x + 7; }
//	    for (a = 0; a < 10; a = a + 1) {
//	        if (a == 3) { continue; }
//	        if (table[a] == x) { break; }
//	    }
//	    return x;
//	}
//
// All values are signed 64-bit integers. Programs must define main; a
// halt is emitted when main returns.
package cc

import "fmt"

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct
	tokKeyword
)

var keywords = map[string]bool{
	"var": true, "func": true, "if": true, "else": true, "while": true,
	"for": true, "break": true, "continue": true, "return": true,
}

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a compilation failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// twoCharPunct lists the multi-character operators, longest-match-first.
var twoCharPunct = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			base := int64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
				j = i
			}
			var v int64
			for i < n && isDigit(src[i], base) {
				v = v*base + digitVal(src[i])
				i++
			}
			if i == j {
				return nil, errf(line, "malformed number")
			}
			toks = append(toks, token{kind: tokNumber, num: v, line: line})
		case isIdentStart(c):
			j := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			text := src[j:i]
			k := tokIdent
			if keywords[text] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line})
		default:
			matched := false
			if i+1 < n {
				two := src[i : i+2]
				for _, p := range twoCharPunct {
					if two == p {
						toks = append(toks, token{kind: tokPunct, text: p, line: line})
						i += 2
						matched = true
						break
					}
				}
			}
			if matched {
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
				'=', '(', ')', '{', '}', '[', ']', ',', ';':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, errf(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isDigit(c byte, base int64) bool {
	if base == 16 {
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	}
	return c >= '0' && c <= '9'
}

func digitVal(c byte) int64 {
	switch {
	case c >= '0' && c <= '9':
		return int64(c - '0')
	case c >= 'a' && c <= 'f':
		return int64(c-'a') + 10
	default:
		return int64(c-'A') + 10
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
