package cc

import "testing"

// TestDivRemOverflowSemantics: MinInt64/-1 and MinInt64%-1 follow the
// ISA's wrapping semantics both when constant-folded at compile time and
// when evaluated at run time through div/rem (a raw Go division in the
// folder would panic the compiler; found by generative testing).
func TestDivRemOverflowSemantics(t *testing.T) {
	const minI64 = -9223372036854775808
	cases := map[string]int64{
		// Constant-folded path (fold.go evalConst).
		"return (-9223372036854775807 - 1) / -1;": minI64,
		"return (-9223372036854775807 - 1) % -1;": 0,
		// Runtime path: the variable blocks folding, so the emulator's
		// OpDIV/OpREM handle the overflow.
		"var x = -9223372036854775807 - 1; var y = -1; return x / y;": minI64,
		"var x = -9223372036854775807 - 1; var y = -1; return x % y;": 0,
		"var x = -9223372036854775807 - 1; var y = 0; return x / y;":  0,
	}
	for src, want := range cases {
		if got := runMain(t, "func main() { "+src+" }"); got != want {
			t.Errorf("%s = %d, want %d", src, got, want)
		}
	}
}
