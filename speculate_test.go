package speculate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nosuchbench"); err == nil {
		t.Fatalf("unknown workload loaded")
	}
}

func TestLoadMemoizes(t *testing.T) {
	b1, err := Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("Load did not memoize")
	}
	if b1.Trace.Len() == 0 || len(b1.Analysis.Spawns) == 0 || b1.Deps == nil {
		t.Fatalf("bench not fully prepared")
	}
}

func TestAssembleAndPrepare(t *testing.T) {
	p, err := Assemble(`
        li   $t9, 500
loop:   andi $t0, $t9, 3
        beq  $t0, $zero, els
        addi $s0, $s0, 1
        j    join
els:    addi $s0, $s0, 2
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare("mini", p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	base, err := b.RunSuperscalar()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Retired != res.Retired {
		t.Fatalf("retire counts differ: %d vs %d", base.Retired, res.Retired)
	}
	rec, err := b.RunRecPred(machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Retired != base.Retired {
		t.Fatalf("rec_pred retire count differs")
	}
}

func TestSpeedupAndLossMetrics(t *testing.T) {
	base := machine.Result{Cycles: 200, IPC: 1.0}
	fast := machine.Result{Cycles: 100, IPC: 2.0}
	if got := SpeedupPct(base, fast); got != 100 {
		t.Fatalf("SpeedupPct = %f, want 100", got)
	}
	if got := SpeedupPct(base, base); got != 0 {
		t.Fatalf("SpeedupPct(self) = %f", got)
	}
	excl := machine.Result{Cycles: 160, IPC: 1.25}
	if got := LossPct(base, fast, excl); got != 75 {
		t.Fatalf("LossPct = %f, want 75", got)
	}
	if SpeedupPct(base, machine.Result{}) != 0 || LossPct(machine.Result{}, fast, excl) != 0 {
		t.Fatalf("zero-guard metrics wrong")
	}
}

func TestWorkloadNamesOrder(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 12 || names[0] != "bzip2" || names[8] != "twolf" {
		t.Fatalf("workload names wrong: %v", names)
	}
}

func TestDefaultWarmupBounds(t *testing.T) {
	b, err := Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	w := b.defaultWarmup()
	if w <= 0 || w > 50000 || w > b.Trace.Len() {
		t.Fatalf("warmup = %d for trace %d", w, b.Trace.Len())
	}
}
