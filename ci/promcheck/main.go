// Command promcheck validates Prometheus text exposition read from stdin —
// the CI smoke scripts' scrape gate:
//
//	curl -s .../metrics?format=prometheus | go run ./ci/promcheck \
//	  server_jobs_submitted server_http_latency_ms
//
// It wraps telemetry.CheckExposition: every line must be a well-formed
// HELP/TYPE comment or sample, family names and (family, labels) series
// must be unique, histogram buckets must be cumulative and end at
// le="+Inf" matching _count, and every family named on the command line
// must be present with a HELP line. Any violation exits 1 with the
// offending line, so a malformed exposition fails the pipeline before a
// real scraper ever sees it.
package main

import (
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if err := telemetry.CheckExposition(os.Stdin, os.Args[1:]...); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Println("exposition ok")
}
