// Command jsonfield prints one top-level field of a JSON object read from
// stdin — the CI smoke scripts' dependency-free stand-in for jq:
//
//	curl -s .../v1/jobs/j1 | go run ./ci/jsonfield state
//
// Strings print unquoted; other values print as JSON. A missing field is an
// error, so a schema drift fails the pipeline loudly instead of comparing
// against an empty string.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonfield <field> < object.json")
		os.Exit(2)
	}
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(os.Stdin).Decode(&obj); err != nil {
		fmt.Fprintln(os.Stderr, "jsonfield:", err)
		os.Exit(1)
	}
	raw, ok := obj[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "jsonfield: no field %q\n", os.Args[1])
		os.Exit(1)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		fmt.Println(s)
		return
	}
	fmt.Println(string(raw))
}
