package speculate_test

import (
	"context"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/tune"
)

var updateTune = flag.Bool("update-tune", false, "rewrite tuning trajectory golden files")

// TestTuneGolden re-runs the checked-in spawn-mask searches from scratch
// and requires the trajectory to match the golden semantically (cache hits
// excluded — they depend on what the environment has already simulated).
// The same files gate CI through `polytune diff -fail-on-regress`. These
// two workloads are the PR's headline deliverable: on both, the tuned mask
// strictly beats the full postdoms policy. Regenerate with
// `go test -run TestTuneGolden -update-tune .` after an intentional
// timing-model change.
func TestTuneGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning search sweep is slow")
	}
	cases := []struct {
		bench  string
		golden string
		opts   tune.Options
	}{
		{"crafty", "crafty_postdoms.golden.json",
			tune.Options{Bench: "crafty", Policy: "postdoms", Seed: 1, Rounds: 6, TopK: 4}},
		{"vortex", "vortex_postdoms.golden.json",
			tune.Options{Bench: "vortex", Policy: "postdoms", Seed: 1, Rounds: 6, TopK: 4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			b, err := speculate.Load(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			ev := &tune.LocalEvaluator{Bench: b, Policy: tc.opts.Policy}
			traj, err := tune.Search(context.Background(), ev, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "tune", tc.golden)
			if *updateTune {
				if err := traj.WriteFile(path); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := tune.ReadTrajectoryFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-tune)", err)
			}
			if d := tune.Compare(golden, traj); d.Changed() {
				t.Errorf("trajectory drifted from %s (regenerate with -update-tune if intended):\n%s",
					path, strings.Join(d.Lines, "\n"))
			}
			// The deliverable itself: the tuned mask must strictly beat the
			// untuned postdoms baseline on these workloads.
			if traj.BestCycles >= traj.BaselineCycles {
				t.Errorf("tuned mask no longer beats postdoms: %d >= %d baseline",
					traj.BestCycles, traj.BaselineCycles)
			}
			if traj.BestMask == "" {
				t.Error("winning mask is empty")
			}
		})
	}
}
