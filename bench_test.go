// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices called out in DESIGN.md. Each figure
// benchmark reports the figure's headline number as a custom metric and
// logs the full text table once.
package speculate_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/machine"
)

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFigure5(rows))
			total := 0
			for _, r := range rows {
				total += r.Total
			}
			b.ReportMetric(float64(total), "static-spawns")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Figure8()
		if i == 0 {
			b.Log("\n" + tab)
		}
	}
}

func benchSpeedupTable(b *testing.B, run func() (*harness.SpeedupTable, error)) {
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.Format())
			b.ReportMetric(tab.Average(len(tab.Policies)-1), "postdoms-avg-speedup-%")
		}
	}
}

// BenchmarkFigure9 regenerates the individual-heuristic comparison
// (loop, loopFT, procFT, hammock, other, postdoms over the superscalar).
func BenchmarkFigure9(b *testing.B) { benchSpeedupTable(b, harness.Figure9) }

// BenchmarkFigure10 regenerates the heuristic-combination comparison.
func BenchmarkFigure10(b *testing.B) { benchSpeedupTable(b, harness.Figure10) }

// BenchmarkKernelsGrid runs the individual-heuristic grid over the kernels
// workload family — the five loader + syscall programs — reporting the
// postdoms-average speedup the same way Figure 9 does for the synthetic
// twelve.
func BenchmarkKernelsGrid(b *testing.B) {
	benchSpeedupTable(b, func() (*harness.SpeedupTable, error) {
		return harness.Figure9Opts(harness.Options{Family: "kernels"})
	})
}

// BenchmarkFigure12 regenerates the reconvergence-predictor comparison.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.Format())
			if row, ok := tab.PolicyRow("rec_pred"); ok {
				var avg float64
				for _, v := range row {
					avg += v
				}
				b.ReportMetric(avg/float64(len(row)), "recpred-avg-speedup-%")
			}
		}
	}
}

// BenchmarkFigure11 regenerates the leave-one-category-out losses.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.Format())
			var worst float64
			for e := range tab.Exclusions {
				if a := tab.Average(e); a > worst {
					worst = a
				}
			}
			b.ReportMetric(worst, "worst-avg-loss-%")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: each sweeps one Task Spawn Unit design parameter on a
// representative benchmark and reports the resulting IPC.

func ablate(b *testing.B, benchName string, mutate func(*machine.Config)) {
	bench, err := speculate.Load(benchName)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.PolyFlowConfig()
	mutate(&cfg)
	var ipc float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPolicy(core.PolicyPostdoms, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC
	}
	b.ReportMetric(ipc, "IPC")
}

// BenchmarkAblationSpawnDistance sweeps the trace bound on how far into
// the future a task may be spawned.
func BenchmarkAblationSpawnDistance(b *testing.B) {
	for _, dist := range []int{16, 32, 64, 128, 256, 512} {
		b.Run(benchmarkName("dist", dist), func(b *testing.B) {
			ablate(b, "twolf", func(c *machine.Config) { c.MaxSpawnDistance = dist })
		})
	}
}

// BenchmarkAblationTaskCount sweeps the number of task contexts (the paper
// uses 8).
func BenchmarkAblationTaskCount(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(benchmarkName("tasks", n), func(b *testing.B) {
			ablate(b, "twolf", func(c *machine.Config) { c.MaxTasks = n })
		})
	}
}

// BenchmarkAblationAnyTaskSpawn relaxes the paper's tail-task-only
// spawning rule.
func BenchmarkAblationAnyTaskSpawn(b *testing.B) {
	for _, tailOnly := range []bool{true, false} {
		name := "tail-only"
		if !tailOnly {
			name = "any-task"
		}
		b.Run(name, func(b *testing.B) {
			ablate(b, "mcf", func(c *machine.Config) { c.SpawnFromTailOnly = tailOnly })
		})
	}
}

// BenchmarkAblationMinSpawnDistance sweeps the near-spawn profitability
// filter.
func BenchmarkAblationMinSpawnDistance(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8, 16} {
		b.Run(benchmarkName("min", d), func(b *testing.B) {
			ablate(b, "vpr.place", func(c *machine.Config) { c.MinSpawnDistance = d })
		})
	}
}

// BenchmarkAblationSpawnLatency sweeps the task-creation latency.
func BenchmarkAblationSpawnLatency(b *testing.B) {
	for _, l := range []int{0, 1, 2, 4, 8, 16} {
		b.Run(benchmarkName("lat", l), func(b *testing.B) {
			ablate(b, "crafty", func(c *machine.Config) { c.SpawnLatency = l })
		})
	}
}

// BenchmarkAblationMispredictPenalty sweeps the front-end depth (the
// misprediction penalty floor).
func BenchmarkAblationMispredictPenalty(b *testing.B) {
	for _, d := range []int{4, 6, 10, 14} {
		b.Run(benchmarkName("depth", d), func(b *testing.B) {
			ablate(b, "mcf", func(c *machine.Config) { c.FrontEndDepth = d })
		})
	}
}

// BenchmarkAblationHintCache sweeps the (normally unmodeled) spawn hint
// cache capacity — the idealization the paper calls out explicitly.
func BenchmarkAblationHintCache(b *testing.B) {
	for _, log2 := range []int{0, 3, 5, 8, 12} {
		b.Run(benchmarkName("log2", log2), func(b *testing.B) {
			ablate(b, "twolf", func(c *machine.Config) { c.HintCacheLog2 = log2 })
		})
	}
}

// BenchmarkAblationReclaimROB compares the head-task ROB reserve against
// the paper's future-work youngest-task reclamation, under a starved ROB.
func BenchmarkAblationReclaimROB(b *testing.B) {
	for _, reclaim := range []bool{false, true} {
		name := "reserve"
		if reclaim {
			name = "reclaim"
		}
		b.Run(name, func(b *testing.B) {
			ablate(b, "twolf", func(c *machine.Config) {
				c.ROBSize = 96
				if reclaim {
					c.ROBReserve = 0
					c.ReclaimROB = true
				}
			})
		})
	}
}

// BenchmarkSimulatorThroughput measures raw timing-model speed
// (instructions simulated per wall second are visible via ns/op against
// the per-run instruction count).
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, err := speculate.Load("gzip")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSuperscalar(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisThroughput measures the static analysis pipeline plus
// the trace dependence scan (ComputeDeps), the two pre-simulation passes
// every workload pays once.
func BenchmarkAnalysisThroughput(b *testing.B) {
	bench, err := speculate.Load("gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(bench.Prog, bench.Trace.IndirectTargets()); err != nil {
			b.Fatal(err)
		}
		bench.Trace.ComputeDeps()
	}
}

func benchmarkName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
