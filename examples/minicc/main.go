// Compile a mini-C program with the repository's own compiler, then run
// the whole reproduction pipeline on the compiler-generated code: spawn
// points from immediate postdominators, and PolyFlow vs superscalar. This
// mirrors the paper's setup, where the analyzed binaries come from a
// compiler rather than hand-written assembly.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/machine"
)

// A miniature annealer in mini-C: hard accept/reject hammocks inside a hot
// loop, a helper call, and array state — the control-flow shapes the
// paper's taxonomy classifies.
const source = `
var pos[1024];
var seed;

func rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 8) & 0x7fffffff;
}

func cost(a, b) {
  var d = pos[a & 1023] - pos[b & 1023];
  if (d < 0) { d = -d; }
  return d;
}

func main() {
  var i; var moves = 4000; var total = 0;
  seed = 99991;
  for (i = 0; i < 1024; i = i + 1) { pos[i] = rnd() & 4095; }
  for (i = 0; i < moves; i = i + 1) {
    var a = rnd(); var b = rnd();
    var delta = cost(a, b) - (rnd() & 1023);
    if (delta < 0 || (rnd() & 7) == 0) {
      var t = pos[a & 1023];        // accept: swap
      pos[a & 1023] = pos[b & 1023];
      pos[b & 1023] = t;
      total = total + delta;
    } else {
      total = total + 1;            // reject
    }
  }
  return total;
}`

func main() {
	prog, err := cc.CompileAndAssemble(source)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := speculate.Prepare("minicc-anneal", prog, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d static instrs, %d dynamic instrs\n",
		len(prog.Code), bench.Trace.Len())

	kinds := bench.Analysis.CountByKind()
	fmt.Printf("spawn points found in compiled code:")
	for k := core.Kind(0); k < core.NumKinds; k++ {
		fmt.Printf(" %s=%d", k, kinds[k])
	}
	fmt.Println()

	base, err := bench.RunSuperscalar()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []core.Policy{core.PolicyHammock, core.PolicyProcFT, core.PolicyPostdoms} {
		res, err := bench.RunPolicy(p, machine.PolyFlowConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %+7.1f%%\n", p.Name, speculate.SpeedupPct(base, res))
	}
}
