// Side-by-side spawn-policy comparison on one workload: a single row of
// the paper's Figure 9 (individual heuristics), Figure 10 (combinations),
// and Figure 12 (dynamic reconvergence prediction).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	benchName := flag.String("bench", "mcf", "workload to sweep")
	flag.Parse()

	bench, err := speculate.Load(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	base, err := bench.RunSuperscalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: superscalar IPC %.2f (%d instrs, %d mispredicts, %d I$ misses, %d D$ misses)\n\n",
		*benchName, base.IPC, base.Retired, base.Mispredicts, base.ICacheMisses, base.DCacheMisses)

	policies := core.IndividualPolicies()
	policies = append(policies, core.CombinationPolicies()[:3]...)

	fmt.Printf("%-24s %9s %8s %9s %9s\n", "policy", "speedup%", "spawns", "squashes", "avgTasks")
	for _, p := range policies {
		res, err := bench.RunPolicy(p, machine.PolyFlowConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %+9.1f %8d %9d %9.2f\n", p.Name,
			speculate.SpeedupPct(base, res), res.SpawnsTaken, res.Violations,
			float64(res.TaskCycles)/float64(res.Cycles))
	}
	rec, err := bench.RunRecPred(machine.PolyFlowConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %+9.1f %8d %9d %9.2f\n", "rec_pred (dynamic)",
		speculate.SpeedupPct(base, rec), rec.SpawnsTaken, rec.Violations,
		float64(rec.TaskCycles)/float64(rec.Cycles))
}
