// The paper's Section 2.3 walkthrough on the twolf new_dbox_a kernel
// (Figure 6): loop-iteration spawns are recovered by the combination of
// hammock spawns (which hop the hard branches inside the inner loop) and
// loop fall-through spawns (which expose outer-loop parallelism), so
// spawning from the full immediate-postdominator set matches or beats the
// classic loop-iteration heuristic.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	bench, err := speculate.Load("twolf")
	if err != nil {
		log.Fatal(err)
	}
	prog := bench.Prog

	fmt.Println("twolf new_dbox_a kernel — spawn-point anatomy (cf. Figure 6):")
	for _, s := range bench.Analysis.Spawns {
		if f, _ := prog.FuncOf(s.From); prog.Symbols[f] != "new_dbox_a" {
			continue
		}
		fmt.Printf("  %-8s %-22s -> %s\n", s.Kind,
			prog.SymbolFor(s.From), prog.SymbolFor(s.Target))
	}
	fmt.Println(`
The three hammocks are the if-then-else on netptr->flag and the two ABS()
if-thens; the inner latch's loopFT spawn starts the next outer-iteration
tail — together they recover the inner- and outer-loop iteration spawns
(9da0->9dd8 and 9d60->9f28 in the paper's addresses).`)

	base, err := bench.RunSuperscalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superscalar IPC: %.2f\n\n", base.IPC)

	for _, p := range []core.Policy{
		core.PolicyLoop, core.PolicyLoopFT, core.PolicyHammock, core.PolicyPostdoms,
	} {
		res, err := bench.RunPolicy(p, machine.PolyFlowConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s speedup %+7.1f%%  (spawns %6d: loop=%d loopFT=%d hammock=%d)\n",
			p.Name, speculate.SpeedupPct(base, res), res.SpawnsTaken,
			res.SpawnsByKind[core.KindLoop], res.SpawnsByKind[core.KindLoopFT],
			res.SpawnsByKind[core.KindHammock])
	}
}
