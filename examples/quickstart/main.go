// Quickstart: assemble a small program, find its control-equivalent spawn
// points from branch immediate postdominators, and compare the PolyFlow
// speculative parallelization machine against the superscalar baseline.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
)

// A loop dominated by a hard-to-predict if-then-else: the canonical
// situation in which spawning at the branch's immediate postdominator (the
// join) lets fetch proceed past mispredictions.
const program = `
        .func main
main:   li   $s7, 2463534242     # xorshift state
        li   $t9, 20000           # iterations
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        sll  $t0, $s7, 17
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
        beq  $t1, $zero, els     # 50/50 branch: ~half mispredict
        addi $s0, $s0, 3
        sll  $t2, $s0, 2
        xor  $s1, $s1, $t2
        j    join
els:    addi $s0, $s0, 5
        sub  $s1, $s1, $s0
join:   andi $s1, $s1, 0xffff
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`

func main() {
	prog, err := speculate.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := speculate.Prepare("quickstart", prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program: %d static, %d dynamic instructions\n",
		len(prog.Code), bench.Trace.Len())

	fmt.Println("\ncontrol-equivalent spawn points (from immediate postdominators):")
	for _, s := range bench.Analysis.Spawns {
		fmt.Printf("  %-8s trigger %s  ->  spawn %s\n",
			s.Kind, prog.SymbolFor(s.From), prog.SymbolFor(s.Target))
	}

	base, err := bench.RunSuperscalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuperscalar: %6d cycles, IPC %.2f, %d mispredicts\n",
		base.Cycles, base.IPC, base.Mispredicts)

	res, err := bench.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polyflow:    %6d cycles, IPC %.2f, %d spawns, peak %d tasks\n",
		res.Cycles, res.IPC, res.SpawnsTaken, res.PeakTasks)
	fmt.Printf("\ncontrol-equivalent spawning speedup: %+.1f%%\n",
		speculate.SpeedupPct(base, res))
}
