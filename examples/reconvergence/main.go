// Section 4.4: train the dynamic reconvergence predictor (Collins et al.
// style) on a benchmark's retirement stream, compare its learned
// reconvergence points against the compiler-computed immediate
// postdominators, and measure how close reconvergence-predictor spawning
// gets to compiler-postdominator spawning.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/reconv"
)

func main() {
	benchName := flag.String("bench", "twolf", "workload to analyze")
	flag.Parse()

	bench, err := speculate.Load(*benchName)
	if err != nil {
		log.Fatal(err)
	}

	// Train a predictor offline on the full retirement stream.
	pred := reconv.New(reconv.DefaultConfig())
	for i := range bench.Trace.Entries {
		pred.Observe(&bench.Trace.Entries[i])
	}

	// Compiler truth: branch PC -> ipdom target, for conditional branches.
	truth := map[uint64]uint64{}
	for _, s := range bench.Analysis.Spawns {
		inst, _ := bench.Prog.InstAt(s.From)
		if inst.IsCondBranch() || inst.IsIndirectJump() && !inst.IsReturn() && !inst.IsCall() {
			truth[s.From] = s.Target
		}
	}

	exact, predicted := 0, 0
	for pc, want := range truth {
		got, ok := pred.Predict(pc)
		if !ok {
			continue
		}
		predicted++
		if got == want {
			exact++
		}
	}
	fmt.Printf("%s: %d branch spawn points with compiler ipdoms\n", *benchName, len(truth))
	fmt.Printf("  predictor served %d of them; %d match the ipdom exactly (%.0f%%)\n",
		predicted, exact, 100*float64(exact)/float64(max(predicted, 1)))
	fmt.Println("  (mismatches and unserved branches are the approximation gap the paper")
	fmt.Println("   attributes to warm-up and hard-to-identify reconvergences)")

	base, err := bench.RunSuperscalar()
	if err != nil {
		log.Fatal(err)
	}
	post, err := bench.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := bench.RunRecPred(machine.PolyFlowConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  compiler postdominators: %+6.1f%% speedup\n", speculate.SpeedupPct(base, post))
	fmt.Printf("  reconvergence predictor: %+6.1f%% speedup (trained online, cold start)\n",
		speculate.SpeedupPct(base, rec))
}
