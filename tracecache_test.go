package speculate_test

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// artifactHashes returns the trace and analysis artifact hashes of a
// registered workload.
func artifactHashes(t *testing.T, name string) (traceHash, anHash string) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	tk, err := artifact.NewTraceKey(w.Name, artifact.SourceSHA(w.Source), w.MaxInstrs)
	if err != nil {
		t.Fatal(err)
	}
	ak, err := artifact.NewAnalysisKey(w.Name, artifact.SourceSHA(w.Source), w.MaxInstrs)
	if err != nil {
		t.Fatal(err)
	}
	return tk.Hash(), ak.Hash()
}

// TestAnalysisArtifactByteIdentity pins the analysis codec's canonicality:
// the polyflow-analysis/1 artifact stored alongside a workload's trace is
// byte-identical to encoding a fresh core.Analyze result, and decoding then
// re-encoding it reproduces the same bytes. That identity is what lets a
// cluster worker trust a coordinator-warmed analysis artifact.
func TestAnalysisArtifactByteIdentity(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	speculate.ClearBenchCache()
	b, src, err := speculate.LoadCached("twolf", cache)
	if err != nil {
		t.Fatal(err)
	}
	if src != speculate.LoadEmulated {
		t.Fatalf("cold load source %v, want LoadEmulated", src)
	}

	_, anHash := artifactHashes(t, "twolf")
	stored, ok, err := cache.Get(anHash)
	if err != nil || !ok {
		t.Fatalf("analysis artifact not stored (ok=%v err=%v)", ok, err)
	}
	fresh, err := core.EncodeAnalysis(b.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, fresh) {
		t.Errorf("stored analysis artifact differs from freshly encoded analysis (%d vs %d bytes)", len(stored), len(fresh))
	}

	dec, err := core.DecodeAnalysis(b.Prog, stored)
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.EncodeAnalysis(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, stored) {
		t.Errorf("decode→re-encode of analysis artifact is not byte-identical (%d vs %d bytes)", len(re), len(stored))
	}
}

// TestAnalysisArtifactSkipsReanalysis asserts the cache-warm contract: a
// load served from stored artifacts runs neither the emulator nor the
// static analysis, and simulates identically to the cold-path bench.
func TestAnalysisArtifactSkipsReanalysis(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	speculate.ClearBenchCache()
	cold, src, err := speculate.LoadCached("mcf", cache)
	if err != nil {
		t.Fatal(err)
	}
	if src != speculate.LoadEmulated {
		t.Fatalf("cold load source %v, want LoadEmulated", src)
	}

	speculate.ClearBenchCache()
	beforeAn, beforeEmu := speculate.AnalysisRuns(), speculate.EmulatorRuns()
	warm, src, err := speculate.LoadCached("mcf", cache)
	if err != nil {
		t.Fatal(err)
	}
	if src != speculate.LoadTraceArtifact {
		t.Fatalf("warm load source %v, want LoadTraceArtifact", src)
	}
	if got := speculate.AnalysisRuns() - beforeAn; got != 0 {
		t.Errorf("warm load ran the static analysis %d times, want 0 (analysis artifact)", got)
	}
	if got := speculate.EmulatorRuns() - beforeEmu; got != 0 {
		t.Errorf("warm load ran the emulator %d times, want 0", got)
	}

	coldRes, err := cold.RunNamed("postdoms", machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.RunNamed("postdoms", machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Errorf("artifact-served bench diverges from cold bench:\ncold: %+v\nwarm: %+v", coldRes, warmRes)
	}
}

// TestLazyTraceReplayBitIdentity proves the size-gated lazy ReaderAt path
// in LoadCached is an implementation detail: a bench loaded through it
// re-encodes to the exact stored artifact bytes and simulates identically
// to one loaded through the eager in-memory decode.
func TestLazyTraceReplayBitIdentity(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func(v int64) { speculate.LazyTraceThreshold = v }(speculate.LazyTraceThreshold)

	speculate.ClearBenchCache()
	if _, src, err := speculate.LoadCached("twolf", cache); err != nil || src != speculate.LoadEmulated {
		t.Fatalf("cold load: src=%v err=%v", src, err)
	}

	speculate.LazyTraceThreshold = 1 << 62 // force the eager decode
	speculate.ClearBenchCache()
	eager, src, err := speculate.LoadCached("twolf", cache)
	if err != nil || src != speculate.LoadTraceArtifact {
		t.Fatalf("eager warm load: src=%v err=%v", src, err)
	}

	speculate.LazyTraceThreshold = 1 // force the lazy ReaderAt path
	speculate.ClearBenchCache()
	lazy, src, err := speculate.LoadCached("twolf", cache)
	if err != nil || src != speculate.LoadTraceArtifact {
		t.Fatalf("lazy warm load: src=%v err=%v", src, err)
	}

	traceHash, _ := artifactHashes(t, "twolf")
	stored, ok, err := cache.Get(traceHash)
	if err != nil || !ok {
		t.Fatalf("trace artifact not stored (ok=%v err=%v)", ok, err)
	}
	enc, err := lazy.EncodeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, stored) {
		t.Errorf("lazily loaded trace re-encodes to %d bytes differing from the %d-byte stored artifact", len(enc), len(stored))
	}

	eagerRes, err := eager.RunNamed("postdoms", machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	lazyRes, err := lazy.RunNamed("postdoms", machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eagerRes, lazyRes) {
		t.Errorf("lazy-path bench diverges from eager-path bench:\neager: %+v\nlazy: %+v", eagerRes, lazyRes)
	}
}

// TestLazyTraceAllocationGuard is the perf contract behind the size gate:
// the lazy path must not materialize the serialized artifact, so a warm
// load of gzip (the largest trace) must allocate at least half the
// artifact's size less than the eager path, which copies the full payload
// into memory before decoding.
func TestLazyTraceAllocationGuard(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func(v int64) { speculate.LazyTraceThreshold = v }(speculate.LazyTraceThreshold)

	speculate.ClearBenchCache()
	if _, src, err := speculate.LoadCached("gzip", cache); err != nil || src != speculate.LoadEmulated {
		t.Fatalf("cold load: src=%v err=%v", src, err)
	}
	traceHash, _ := artifactHashes(t, "gzip")
	h, ok, err := cache.Open(traceHash)
	if err != nil || !ok {
		t.Fatalf("trace artifact not stored (ok=%v err=%v)", ok, err)
	}
	size := h.Size()
	h.Close()

	measure := func(threshold int64) uint64 {
		speculate.LazyTraceThreshold = threshold
		speculate.ClearBenchCache()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, src, err := speculate.LoadCached("gzip", cache); err != nil || src != speculate.LoadTraceArtifact {
			t.Fatalf("warm load: src=%v err=%v", src, err)
		}
		runtime.ReadMemStats(&m1)
		return m1.TotalAlloc - m0.TotalAlloc
	}

	eager := measure(1 << 62)
	lazy := measure(1)
	if want := uint64(size / 2); eager < lazy || eager-lazy < want {
		t.Errorf("lazy path saved %d bytes of allocation over eager (eager=%d lazy=%d), want at least %d (half the %d-byte artifact)",
			int64(eager)-int64(lazy), eager, lazy, want, size)
	}
}
