// Cross-cutting integration tests: invariants that must hold for every
// workload × policy combination, end to end (assembler -> emulator ->
// analysis -> timing simulation).
package speculate_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
)

// TestEveryWorkloadEveryPolicyRetiresExactly runs a representative policy
// set over every workload and checks the fundamental correctness
// invariants: all post-warmup instructions retire, and no simulation is
// slower than 1/20th of an instruction per cycle (a deadlock canary).
func TestEveryWorkloadEveryPolicyRetiresExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep")
	}
	policies := []core.Policy{core.PolicyLoop, core.PolicyHammock, core.PolicyPostdoms}
	for _, name := range speculate.AllWorkloadNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := speculate.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := b.RunSuperscalar()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range policies {
				res, err := b.RunPolicy(p, machine.PolyFlowConfig())
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				if res.Retired != base.Retired {
					t.Errorf("%s: retired %d, superscalar retired %d", p.Name, res.Retired, base.Retired)
				}
				if res.IPC < 0.05 {
					t.Errorf("%s: IPC %.3f looks like a livelock", p.Name, res.IPC)
				}
			}
		})
	}
}

// TestSpawnTargetsAreControlEquivalent verifies the core property on real
// workloads: every static spawn target is the start of the block that
// immediately postdominates the trigger's block — i.e. whenever the
// trigger retires on the correct path, the target is guaranteed to retire
// later (checked empirically against the trace for a sample).
func TestSpawnTargetsAreControlEquivalent(t *testing.T) {
	for _, name := range []string{"twolf", "crafty", "gcc"} {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for _, s := range b.Analysis.Spawns {
			if s.Kind == core.KindLoop {
				continue // the loop heuristic is not an ipdom spawn
			}
			// Empirical control equivalence: for up to 50 occurrences of
			// the trigger, the target must occur later in the trace
			// (bounded by the function's dynamic extent; use a generous
			// window).
			occ := b.Trace.Occurrences(s.From)
			n := len(occ)
			if n > 50 {
				n = 50
			}
			for i := 0; i < n; i++ {
				at := int(occ[i])
				if next := b.Trace.NextOccurrence(s.Target, at); next < 0 {
					// The final occurrences may legitimately never reach
					// the target (program ends inside the region).
					if i < n-2 {
						t.Errorf("%s: spawn %s->%s: trigger at %d never reaches target",
							name, b.Prog.SymbolFor(s.From), b.Prog.SymbolFor(s.Target), at)
					}
					break
				}
				checked++
			}
		}
		if checked == 0 {
			t.Errorf("%s: no spawn occurrences checked", name)
		}
	}
}

// TestSimulationIsDeterministic: repeated preparation and simulation of
// the same workload yields identical traces and cycle counts.
func TestSimulationIsDeterministic(t *testing.T) {
	w1, err := speculate.Load("crafty")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh, uncached preparation of the same source.
	w2, err := speculate.Prepare("crafty-again", w1.Prog, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Trace.Len() != w2.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", w1.Trace.Len(), w2.Trace.Len())
	}
	r1, err := w1.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w2.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.SpawnsTaken != r2.SpawnsTaken || r1.Mispredicts != r2.Mispredicts {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestEmulatedResultsSurviveSimulation: the timing model never alters
// architectural results — the trace IS the execution. Spot-check that the
// final store of each workload's trace writes the same value across
// machine configurations (trivially true by construction; this guards the
// property against future "optimizations" that might mutate the trace).
func TestEmulatedResultsSurviveSimulation(t *testing.T) {
	b, err := speculate.Load("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var lastStore *struct {
		addr uint64
		idx  int
	}
	for i := range b.Trace.Entries {
		if b.Trace.Entries[i].IsStore() {
			lastStore = &struct {
				addr uint64
				idx  int
			}{b.Trace.Entries[i].Addr, i}
		}
	}
	if lastStore == nil {
		t.Fatal("gzip trace has no stores")
	}
	before := b.Trace.Entries[lastStore.idx]
	if _, err := b.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig()); err != nil {
		t.Fatal(err)
	}
	if b.Trace.Entries[lastStore.idx] != before {
		t.Fatalf("simulation mutated the trace")
	}
}

// TestISAInvariant: every workload's static code avoids the assembler
// temporary except through synthesized branches, and never writes $zero.
func TestISAInvariant(t *testing.T) {
	for _, name := range speculate.WorkloadNames() {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, inst := range b.Prog.Code {
			if d, ok := inst.Dst(); ok && d == isa.Zero {
				t.Errorf("%s: instruction %d writes $zero", name, i)
			}
		}
	}
}
