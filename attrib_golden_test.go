package speculate_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/attrib"
	"repro/internal/machine"
)

var updateAttrib = flag.Bool("update", false, "rewrite golden files")

// TestAttributionGolden pins the gzip/postdoms attribution report byte for
// byte. The same file is checked by CI against a fresh `polyflow -bench
// gzip -policy postdoms -attrib` run via `polystat diff -fail-on-diff`, so
// it both freezes the JSON schema and catches any timing-model change that
// silently shifts per-site accounting. Regenerate with `go test -run
// TestAttributionGolden -update .` after an intentional change.
func TestAttributionGolden(t *testing.T) {
	// One workload per family: gzip pins the synthetic path, quicksort the
	// loader + syscall path (its golden gates the CI kernels-smoke job).
	for _, name := range []string{"gzip", "quicksort"} {
		t.Run(name, func(t *testing.T) {
			b, err := speculate.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.PolyFlowConfig()
			cfg.Attribution = attrib.NewTable()
			res, err := b.RunNamed("postdoms", cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := machine.VerifyAttribution(cfg.Attribution, res); err != nil {
				t.Fatal(err)
			}
			rep := attrib.NewReport(cfg.Attribution, b.Name, "postdoms", res.Config, res.Cycles, res.Retired)
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}

			golden := filepath.Join("testdata", "attrib", name+"_postdoms.golden.json")
			if *updateAttrib {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("attribution report drifted from %s (regenerate with -update if intended)\ngot %d bytes, want %d",
					golden, buf.Len(), len(want))
			}
		})
	}
}
