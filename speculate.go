// Package speculate is the public facade of this repository's reproduction
// of "Exploiting Postdominance for Speculative Parallelization" (Agarwal,
// Malik, Woley, Stone, Frank — HPCA 2007).
//
// The typical pipeline is:
//
//	bench, err := speculate.Load("twolf")          // assemble + emulate + analyze
//	base, _ := bench.RunSuperscalar()              // 8-wide baseline
//	res, _ := bench.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
//	fmt.Printf("speedup %.1f%%\n", speculate.SpeedupPct(base, res))
//
// Programs are written in the repository's MIPS-like assembly (internal/asm),
// executed functionally to obtain the retired dynamic trace (internal/emu),
// analyzed for control-equivalent spawn points from branch immediate
// postdominators (internal/core), and finally simulated on the cycle-level
// PolyFlow/superscalar timing model (internal/machine). The dynamic
// reconvergence predictor of Section 4.4 lives in internal/reconv.
package speculate

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/reconv"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Bench is a prepared benchmark: program, dynamic trace, dependence
// information, and the static spawn-point analysis.
type Bench struct {
	Name     string
	Prog     *isa.Program
	Trace    *trace.Trace
	Deps     *trace.Deps
	Analysis *core.Analysis

	// SourceSHA is the hex SHA-256 of the assembly source, and MaxInstrs
	// the emulation bound, for benches prepared from a registered workload
	// — together they are the bench's identity in the artifact cache
	// (internal/artifact). SourceSHA is empty for ad-hoc Prepare'd
	// programs, which are therefore uncacheable.
	SourceSHA string
	MaxInstrs int
}

// Assemble assembles source text into a program image.
func Assemble(src string) (*isa.Program, error) { return asm.Assemble(src) }

// Prepare assembles (if needed) and emulates the program, then runs the
// profile-assisted postdominator analysis (indirect-jump targets observed
// in the trace augment the static jump tables, as in the paper's
// profile-driven analysis).
func Prepare(name string, prog *isa.Program, maxInstrs int) (*Bench, error) {
	return prepare(name, prog, maxInstrs, nil, nil, nil)
}

// PrepareWorkload prepares a registered workload under its family
// runtime: kernels assemble through the object-image loader and emulate
// over a fresh sysos instance with segment checking; the synthetic family
// takes the bare path. Both land in the same Bench shape, which is why
// every downstream run path is family-agnostic.
func PrepareWorkload(w workloads.Workload) (*Bench, error) {
	prog := w.Assemble()
	b, err := prepare(w.Name, prog, w.MaxInstrs, w.NewOS(), w.NewOS(), w.Segments(prog))
	if err != nil {
		return nil, err
	}
	b.SourceSHA = w.SHA()
	return b, nil
}

// prepare emulates, architecturally re-checks, and analyzes one program.
// os drives the emulation and checkOS the re-check; they must be distinct
// fresh instances (syscall handlers are stateful).
func prepare(name string, prog *isa.Program, maxInstrs int, os, checkOS emu.SyscallHandler, segs []emu.Segment) (*Bench, error) {
	emuRuns.Add(1)
	tr, err := emu.Run(prog, emu.Config{MaxInstrs: maxInstrs, OS: os, Segments: segs})
	if err != nil {
		return nil, fmt.Errorf("speculate: emulating %s: %w", name, err)
	}
	// The paper's simulator compares every retired instruction against an
	// architectural simulator; since the timing models are trace-driven,
	// verifying the trace here gives the same guarantee up front.
	if err := emu.CheckOS(prog, tr, checkOS); err != nil {
		return nil, fmt.Errorf("speculate: architectural check of %s failed: %w", name, err)
	}
	an, err := analyze(prog, tr.IndirectTargets())
	if err != nil {
		return nil, fmt.Errorf("speculate: analyzing %s: %w", name, err)
	}
	return &Bench{
		Name:      name,
		Prog:      prog,
		Trace:     tr,
		Deps:      tr.ComputeDeps(),
		Analysis:  an,
		MaxInstrs: maxInstrs,
	}, nil
}

// WorkloadNames lists the synthetic benchmarks in the paper's figure
// order (the default grid set).
func WorkloadNames() []string { return workloads.Names() }

// AllWorkloadNames lists every registered workload across families:
// the synthetic twelve, then the kernels family.
func AllWorkloadNames() []string { return workloads.AllNames() }

// FamilyWorkloadNames lists one family's workload names in canonical
// order (nil for an unknown family); see workloads.Families.
func FamilyWorkloadNames(family string) []string {
	var out []string
	for _, w := range workloads.ByFamily(family) {
		out = append(out, w.Name)
	}
	return out
}

// WorkloadFamilies lists the registered family names.
func WorkloadFamilies() []string { return workloads.Families() }

// defaultWarmup models the paper's fast-forward through initialization:
// the first chunk of the trace only warms caches and predictors.
func (b *Bench) defaultWarmup() int {
	w := b.Trace.Len() / 5
	if w > 50000 {
		w = 50000
	}
	return w
}

func (b *Bench) fillWarmup(cfg *machine.Config) {
	if cfg.WarmupInstrs == 0 {
		cfg.WarmupInstrs = b.defaultWarmup()
	}
}

// RunSuperscalar simulates the 8-wide superscalar baseline.
func (b *Bench) RunSuperscalar() (machine.Result, error) {
	return b.RunSuperscalarConfig(machine.SuperscalarConfig())
}

// RunSuperscalarConfig simulates the superscalar baseline under a custom
// configuration — e.g. with a telemetry Collector attached.
func (b *Bench) RunSuperscalarConfig(cfg machine.Config) (machine.Result, error) {
	return b.RunSuperscalarContext(context.Background(), cfg)
}

// RunSuperscalarContext is RunSuperscalarConfig under a context: the
// simulation aborts promptly when ctx is canceled or times out.
func (b *Bench) RunSuperscalarContext(ctx context.Context, cfg machine.Config) (machine.Result, error) {
	b.fillWarmup(&cfg)
	return machine.RunContext(ctx, b.Trace, b.Deps, nil, cfg)
}

// RunPolicy simulates PolyFlow with the given static spawn policy.
func (b *Bench) RunPolicy(p core.Policy, cfg machine.Config) (machine.Result, error) {
	return b.RunPolicyContext(context.Background(), p, cfg)
}

// RunPolicyContext is RunPolicy under a context.
func (b *Bench) RunPolicyContext(ctx context.Context, p core.Policy, cfg machine.Config) (machine.Result, error) {
	cfg.Name = fmt.Sprintf("%s/%s", cfg.Name, p.Name)
	b.fillWarmup(&cfg)
	return machine.RunContext(ctx, b.Trace, b.Deps, p.Source(b.Analysis), cfg)
}

// PolicyNames lists every runnable configuration name accepted by RunNamed:
// "superscalar", "rec_pred", and all static spawn policies.
func PolicyNames() []string {
	names := []string{"superscalar", "rec_pred"}
	for _, p := range allPolicies() {
		names = append(names, p.Name)
	}
	return names
}

// PolicyByName finds a static spawn policy by name.
func PolicyByName(name string) (core.Policy, bool) {
	for _, p := range allPolicies() {
		if p.Name == name {
			return p, true
		}
	}
	return core.Policy{}, false
}

func allPolicies() []core.Policy {
	ps := core.IndividualPolicies()
	ps = append(ps, core.CombinationPolicies()...)
	ps = append(ps, core.ExclusionPolicies()...)
	return ps
}

// RunNamed simulates the bench under the named configuration: "superscalar"
// runs the baseline with a superscalar config, "rec_pred" the dynamic
// reconvergence predictor, and any static policy name the corresponding
// spawn source; the two PolyFlow forms take cfg as the machine configuration.
func (b *Bench) RunNamed(name string, cfg machine.Config) (machine.Result, error) {
	return b.RunNamedContext(context.Background(), name, cfg)
}

// RunNamedContext is RunNamed under a context: cancellation and timeouts
// propagate into the cycle loop (polyflow -timeout and polyflowd job
// deadlines ride on this).
func (b *Bench) RunNamedContext(ctx context.Context, name string, cfg machine.Config) (machine.Result, error) {
	switch name {
	case "superscalar":
		// The baseline has no Task Spawn Unit, so cfg.SpawnMask is
		// deliberately not carried over: a masked and an unmasked
		// superscalar run are the same run and must share one artifact.
		ss := machine.SuperscalarConfig()
		ss.Telemetry = cfg.Telemetry
		ss.Attribution = cfg.Attribution
		ss.PolledScheduler = cfg.PolledScheduler
		ss.WarmupInstrs = cfg.WarmupInstrs
		ss.SampleInterval = cfg.SampleInterval
		ss.OnSample = cfg.OnSample
		return b.RunSuperscalarContext(ctx, ss)
	case "rec_pred":
		return b.RunRecPredContext(ctx, cfg)
	default:
		p, ok := PolicyByName(name)
		if !ok {
			return machine.Result{}, fmt.Errorf("speculate: unknown policy %q (have %v)", name, PolicyNames())
		}
		return b.RunPolicyContext(ctx, p, cfg)
	}
}

// RunRecPred simulates PolyFlow with the dynamic reconvergence predictor as
// the spawn source (Section 4.4): the predictor starts cold and trains on
// the retirement stream, so warm-up effects are modeled.
func (b *Bench) RunRecPred(cfg machine.Config) (machine.Result, error) {
	return b.RunRecPredContext(context.Background(), cfg)
}

// RunRecPredContext is RunRecPred under a context.
func (b *Bench) RunRecPredContext(ctx context.Context, cfg machine.Config) (machine.Result, error) {
	cfg.Name = cfg.Name + "/rec_pred"
	b.fillWarmup(&cfg)
	src := reconv.NewSource(reconv.New(reconv.DefaultConfig()), b.Prog)
	return machine.RunContext(ctx, b.Trace, b.Deps, src, cfg)
}

// SpeedupPct returns the percent speedup of res over base, using cycle
// counts (both runs retire the same instruction stream).
func SpeedupPct(base, res machine.Result) float64 {
	if res.Cycles == 0 {
		return 0
	}
	return (float64(base.Cycles)/float64(res.Cycles) - 1) * 100
}

// LossPct returns the Figure 11 metric: the loss in percent speedup of
// excl versus full, normalized to the superscalar IPC:
// (IPC_full - IPC_excl) / IPC_superscalar * 100.
func LossPct(base, full, excl machine.Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return (full.IPC - excl.IPC) / base.IPC * 100
}
