package speculate_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/attrib"
	"repro/internal/machine"
)

// TestEmptySpawnMaskDifferential proves the spawn-mask hook costs nothing
// when unused: every workload, under both PolyFlow policy families and
// both schedulers, must produce byte-identical results and attribution
// reports whether Config.SpawnMask is nil or an attached-but-empty mask.
// This is the contract that let the mask land inside the Task Spawn Unit's
// hot path without re-validating the paper figures.
func TestEmptySpawnMaskDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("empty-mask differential sweep is slow")
	}
	policies := []string{"postdoms", "rec_pred"}
	for _, name := range speculate.WorkloadNames() {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			for _, polled := range []bool{false, true} {
				pol, polled := pol, polled
				sched := "event"
				if polled {
					sched = "polled"
				}
				t.Run(name+"/"+pol+"/"+sched, func(t *testing.T) {
					run := func(mask *machine.SpawnMask) (machine.Result, *attrib.Report) {
						cfg := machine.PolyFlowConfig()
						cfg.PolledScheduler = polled
						cfg.SpawnMask = mask
						cfg.Attribution = attrib.NewTable()
						res, err := b.RunNamed(pol, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if err := machine.VerifyAttribution(cfg.Attribution, res); err != nil {
							t.Fatal(err)
						}
						return res, attrib.NewReport(cfg.Attribution, name, pol, res.Config, res.Cycles, res.Retired)
					}
					base, baseRep := run(nil)
					masked, maskedRep := run(machine.NewSpawnMask())
					if !reflect.DeepEqual(base, masked) {
						t.Errorf("empty mask changed the run:\nnil:   %+v\nempty: %+v", base, masked)
					}
					if !reflect.DeepEqual(baseRep, maskedRep) {
						t.Errorf("empty mask changed attribution:\nnil:   %+v\nempty: %+v", baseRep, maskedRep)
					}
				})
			}
		}
	}
}

// TestNonEmptySpawnMaskAttribution masks each workload's busiest postdoms
// spawn site and requires the attribution contract to hold exactly: the
// report still reconciles with the machine counters, and the masked site
// has no record at all. Only a slice of workloads runs here — the progen
// fuzz wall (FuzzSpawnMask) covers the property over generated programs.
func TestNonEmptySpawnMaskAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("masked attribution sweep is slow")
	}
	for _, name := range []string{"gzip", "twolf", "mcf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := speculate.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.PolyFlowConfig()
			cfg.Attribution = attrib.NewTable()
			res, err := b.RunNamed("postdoms", cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := machine.VerifyAttribution(cfg.Attribution, res); err != nil {
				t.Fatal(err)
			}
			var pc uint64
			var kind uint8
			var most int64 = -1
			cfg.Attribution.ForEach(func(p uint64, k uint8, st *attrib.SiteStats) {
				if k != attrib.Root && st.Spawns+st.Rejected > most {
					pc, kind, most = p, k, st.Spawns+st.Rejected
				}
			})
			if most <= 0 {
				t.Skipf("%s has no active spawn site under postdoms", name)
			}

			cfg.SpawnMask = machine.NewSpawnMask()
			cfg.SpawnMask.Add(pc, kind)
			cfg.Attribution = attrib.NewTable()
			masked, err := b.RunNamed("postdoms", cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := machine.VerifyAttribution(cfg.Attribution, masked); err != nil {
				t.Errorf("attribution does not reconcile under a mask: %v", err)
			}
			if st := cfg.Attribution.Lookup(pc, kind); st != nil {
				t.Errorf("masked site 0x%x:%s still charged: %+v", pc, attrib.KindName(kind), *st)
			}
		})
	}
}
