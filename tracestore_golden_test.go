package speculate_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// goldenTrace deterministically builds the fixture trace: a fixed xorshift
// stream drives 10000 entries (spanning three entry frames) through every
// entry shape — loads, stores, branches, calls, 0/1/2 sources, forward and
// backward control flow. This generator must never change: the encoded
// bytes are pinned on disk and by digest.
func goldenTrace() (*trace.Trace, *trace.Deps) {
	tr := &trace.Trace{}
	pc := uint64(0x4000)
	addr := uint64(0x2_0000)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 10000; i++ {
		r := next()
		e := trace.Entry{PC: pc, Op: isa.Op(r >> 8)}
		switch r & 7 {
		case 0, 1, 2, 3:
			e.Next = pc + isa.InstSize
		case 4:
			e.Next = pc + isa.InstSize*(2+(r>>16)%64)
			e.Flags |= trace.FlagCondBranch | trace.FlagTaken
		case 5:
			e.Next = 0x4000 + isa.InstSize*((r>>16)%512)
			e.Flags |= trace.FlagCall
		case 6:
			e.Next = 0x4000 + isa.InstSize*((r>>16)%512)
			e.Flags |= trace.FlagReturn
		case 7:
			e.Next = pc + isa.InstSize
			e.Flags |= trace.FlagCondBranch
		}
		switch (r >> 3) & 3 {
		case 1:
			e.Flags |= trace.FlagLoad
		case 2:
			e.Flags |= trace.FlagStore
		}
		if e.IsLoad() || e.IsStore() {
			e.MemW = 1 << ((r >> 24) & 3)
			addr = 0x2_0000 + (r>>32)%65536
			e.Addr = addr
		}
		if r&(1<<5) != 0 {
			e.Flags |= trace.FlagHasDst
			e.Dst = isa.Reg((r >> 40) % isa.NumRegs)
		}
		e.NSrc = uint8((r >> 48) % 3)
		for k := 0; k < int(e.NSrc); k++ {
			e.Srcs[k] = isa.Reg((r>>(50+6*k))%isa.NumRegs) % isa.NumRegs
		}
		tr.Entries = append(tr.Entries, e)
		pc = e.Next
	}
	return tr, tr.ComputeDeps()
}

// goldenDigest pins the fixture's SHA-256. A mismatch means the on-disk
// format changed: bump tracestore's version byte and Schema, regenerate the
// fixture with -update-tracestore-golden, and note the break in
// docs/PERFORMANCE.md — never silently re-pin.
const goldenDigest = "42d02a5d7c5d3dcc74d18673ad00e90e01109591dc38f36fd9a82191f6047542"

var goldenPath = filepath.Join("testdata", "tracestore", "golden.trace")

func TestTraceFormatGolden(t *testing.T) {
	tr, deps := goldenTrace()
	enc, err := tracestore.Encode(tr, deps)
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("UPDATE_TRACESTORE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(enc)
		t.Fatalf("fixture regenerated (%d bytes); update goldenDigest to %s and re-run",
			len(enc), hex.EncodeToString(sum[:]))
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with UPDATE_TRACESTORE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding differs from pinned fixture: the polyflow-trace format changed; bump the version byte and Schema in internal/tracestore before regenerating")
	}
	sum := sha256.Sum256(want)
	if got := hex.EncodeToString(sum[:]); got != goldenDigest {
		t.Fatalf("fixture digest %s != pinned %s", got, goldenDigest)
	}

	// The pinned bytes must keep decoding to exactly the generator's trace.
	dec, decDeps, err := tracestore.Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Entries) != len(tr.Entries) {
		t.Fatalf("fixture decodes to %d entries, want %d", len(dec.Entries), len(tr.Entries))
	}
	for i := range tr.Entries {
		if dec.Entries[i] != tr.Entries[i] {
			t.Fatalf("fixture entry %d differs", i)
		}
	}
	if len(decDeps.RegProd) != len(deps.RegProd) {
		t.Fatal("fixture deps length differs")
	}
}
