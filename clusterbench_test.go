// Benchmark for distributed grid execution (the polyflowd cluster): the
// coordinator fans the Figure-9 grid out to N workers and merges the
// artifact bytes. This host has a single CPU, so worker compute cannot
// actually scale here; instead each worker is a real polyflowd whose
// Runner answers after a modeled 25ms remote-simulation latency with real,
// precomputed artifact bytes. What the benchmark measures is therefore the
// coordinator's dispatch pipeline — ring placement, bounded windows,
// submit/poll/result over HTTP — and how cell throughput scales when
// workers are added. Byte-identity of genuinely simulated cells across
// single-node and cluster runs is proven separately by
// internal/cluster's TestClusterGridByteIdentity.
package speculate_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/jobqueue"
	"repro/internal/server"
)

// clusterGridRef simulates every grid cell once on a real local server and
// returns the artifact bytes the cluster's stub workers will serve.
func clusterGridRef(b *testing.B) map[string][]byte {
	b.Helper()
	cache, err := artifact.New(artifact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Cache: cache, Pool: jobqueue.New(jobqueue.Config{QueueDepth: 64})})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	c := &server.Client{Base: "http://" + ln.Addr().String()}

	ctx := context.Background()
	ref := make(map[string][]byte, len(gridBenches)*len(gridPolicies))
	for _, bench := range gridBenches {
		for _, policy := range gridPolicies {
			st, _, err := c.Submit(ctx, server.Request{Bench: bench, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			fin, err := c.Wait(ctx, st.ID, time.Millisecond)
			if err != nil || fin.State != "succeeded" {
				b.Fatalf("reference %s/%s: state=%q err=%v", bench, policy, fin.State, err)
			}
			data, err := c.ResultBytes(ctx, st.ID)
			if err != nil {
				b.Fatal(err)
			}
			ref[bench+"/"+policy] = data
		}
	}
	return ref
}

// clusterCellLatency is the modeled remote-simulation time per cell. It is
// deliberately large relative to the coordinator's per-cell dispatch CPU
// (~2-3ms of HTTP submit/poll/result on this host) so the benchmark
// contrasts worker-bound against dispatch-bound operation rather than
// measuring the single shared CPU the whole cluster runs on here.
const clusterCellLatency = 100 * time.Millisecond

// startStubWorker runs a real polyflowd over HTTP whose Runner models a
// remote simulation: clusterCellLatency of sleep, then the cell's real
// artifact bytes. The worker pool is one deep — one modeled CPU per worker.
func startStubWorker(b *testing.B, ref map[string][]byte) string {
	b.Helper()
	runner := func(ctx context.Context, req server.Request, progress server.ProgressFunc) ([]byte, bool, error) {
		select {
		case <-time.After(clusterCellLatency):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		data, ok := ref[req.Bench+"/"+req.Policy]
		if !ok {
			return nil, false, fmt.Errorf("no reference cell %s/%s", req.Bench, req.Policy)
		}
		return data, false, nil
	}
	srv, err := server.New(server.Config{
		Runner: runner,
		Pool:   jobqueue.New(jobqueue.Config{Workers: 1, QueueDepth: 64}),
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	b.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return "http://" + ln.Addr().String()
}

// BenchmarkGridCluster sweeps the 21-cell Figure-9 grid through a
// coordinator at 1 and 4 workers. With the modeled cell latency and a
// one-deep pool per worker, ideal scaling is linear in the worker count;
// the acceptance bar is >= 3x cell throughput at 4 workers.
func BenchmarkGridCluster(b *testing.B) {
	ref := clusterGridRef(b)
	cells := len(gridBenches) * len(gridPolicies)

	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			coord := cluster.New(cluster.Options{Window: 2, PollInterval: clusterCellLatency / 4})
			defer coord.Close()
			for i := 0; i < workers; i++ {
				if err := coord.AddWorker(startStubWorker(b, ref)); err != nil {
					b.Fatal(err)
				}
			}
			ctx := context.Background()

			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, bench := range gridBenches {
					for _, policy := range gridPolicies {
						wg.Add(1)
						go func(bench, policy string) {
							defer wg.Done()
							data, _, err := coord.RunCell(ctx, server.Request{Bench: bench, Policy: policy})
							if err != nil {
								b.Errorf("cell %s/%s: %v", bench, policy, err)
								return
							}
							if !bytes.Equal(data, ref[bench+"/"+policy]) {
								b.Errorf("cell %s/%s: merged bytes differ from single-node reference", bench, policy)
							}
						}(bench, policy)
					}
				}
				wg.Wait()
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(cells*b.N)/elapsed.Seconds(), "cells/s")
		})
	}
}
