package speculate_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/harness"
)

// The perf trajectory of the timing model is recorded in
// BENCH_simulator.json. Refresh it after simulator performance work with:
//
//	go test -run TestWriteBenchBaseline -bench-baseline -bench-label "short description" .
//
// The file is append-only history: each entry captures ns/op, B/op and
// allocs/op for BenchmarkSimulatorThroughput and BenchmarkFigure9 at one
// commit, so regressions and wins stay visible over time (see
// docs/PERFORMANCE.md).
var (
	benchBaseline = flag.Bool("bench-baseline", false, "measure simulator benchmarks and append an entry to BENCH_simulator.json")
	benchLabel    = flag.String("bench-label", "", "label for the BENCH_simulator.json entry")
)

type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type benchRecord struct {
	Label      string                `json:"label"`
	Date       string                `json:"date"`
	Go         string                `json:"go"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
	// KernelsPostdomsSpeedupPct records each kernels-family workload's
	// postdoms speedup over the superscalar baseline at this commit, so
	// the family's headline numbers live next to the perf history.
	KernelsPostdomsSpeedupPct map[string]float64 `json:"kernels_postdoms_speedup_pct,omitempty"`
}

// benchHistory keeps existing entries as raw JSON: the file also holds
// entries written by other tools (cmd/polyload's service records), whose
// fields must survive a baseline append untouched.
type benchHistory struct {
	History []json.RawMessage `json:"history"`
}

func TestWriteBenchBaseline(t *testing.T) {
	if !*benchBaseline {
		t.Skip("run with -bench-baseline to measure and record simulator benchmarks")
	}
	// Prepare every workload up front so the recorded numbers measure the
	// simulator, not the one-time assemble/emulate/analyze of cold caches.
	for _, name := range speculate.AllWorkloadNames() {
		if _, err := speculate.Load(name); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(f func(*testing.B)) benchEntry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		return benchEntry{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	rec := benchRecord{
		Label: *benchLabel,
		Date:  time.Now().UTC().Format("2006-01-02"),
		Go:    runtime.Version(),
		Benchmarks: map[string]benchEntry{
			"SimulatorThroughput": measure(BenchmarkSimulatorThroughput),
			"Figure9":             measure(BenchmarkFigure9),
			"KernelsGrid":         measure(BenchmarkKernelsGrid),
			"TraceReplay":         measure(BenchmarkTraceReplay),
			"GridPerCell":         measure(BenchmarkGridPerCell),
			"GridBatched":         measure(BenchmarkGridBatched),
		},
		KernelsPostdomsSpeedupPct: kernelsSpeedups(t),
	}

	const path = "BENCH_simulator.json"
	var hist benchHistory
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &hist); err != nil {
			t.Fatalf("corrupt %s: %v", path, err)
		}
	}
	raw, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	hist.History = append(hist.History, raw)
	data, err := json.MarshalIndent(&hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %+v", rec)
}

// kernelsSpeedups runs the kernels-family policy grid once and extracts
// each kernel's postdoms speedup over the superscalar baseline.
func kernelsSpeedups(t *testing.T) map[string]float64 {
	tab, err := harness.Figure9Opts(harness.Options{Family: "kernels"})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tab.PolicyRow("postdoms")
	if !ok {
		t.Fatal("kernels grid has no postdoms column")
	}
	out := make(map[string]float64, len(tab.Benches))
	for i, name := range tab.Benches {
		out[name] = row[i]
	}
	return out
}
