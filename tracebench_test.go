// Benchmarks for the decode-once trace store (ROADMAP item 2): raw replay
// decode throughput, and the batched multi-policy grid against the
// per-cell baseline it replaces. BENCH_simulator.json records all three —
// the batched grid must hold at least 2x over per-cell.
package speculate_test

import (
	"testing"

	"repro"
	"repro/internal/machine"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

// gridBenches x gridPolicies is the grid both grid benchmarks sweep: three
// representative workloads under the full Figure9 run set — the
// superscalar baseline plus the six spawn heuristics — which is what one
// workload column of the paper's evaluation actually costs.
var (
	gridBenches  = []string{"gzip", "mcf", "twolf"}
	gridPolicies = []string{"superscalar", "loop", "loopFT", "procFT", "hammock", "other", "postdoms"}
)

// BenchmarkTraceReplay measures decoding a stored polyflow-trace/1 stream
// back into a simulator-ready trace — the per-workload cost the batched
// path pays instead of functional emulation. b.SetBytes makes the decode
// bandwidth visible as MB/s.
func BenchmarkTraceReplay(b *testing.B) {
	bench, err := speculate.Load("gzip")
	if err != nil {
		b.Fatal(err)
	}
	enc, err := bench.EncodeTrace()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tracestore.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridPerCell is the baseline the trace store replaces: every
// (workload, policy) cell pays its own full preparation — assemble,
// functionally emulate, analyze, scan dependences — before simulating, as
// a cold per-cell job did before traces became cacheable artifacts.
func BenchmarkGridPerCell(b *testing.B) {
	cfg := machine.PolyFlowConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range gridBenches {
			w, ok := workloads.ByName(name)
			if !ok {
				b.Fatalf("unknown workload %s", name)
			}
			for _, policy := range gridPolicies {
				bench, err := speculate.Prepare(name, w.Assemble(), w.MaxInstrs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.RunNamed(policy, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkGridBatched is the decode-once path over the same grid: each
// workload's stored trace is decoded once per sweep and every policy
// simulates from the shared replay — no functional emulation at all.
func BenchmarkGridBatched(b *testing.B) {
	cfg := machine.PolyFlowConfig()
	encoded := make(map[string][]byte, len(gridBenches))
	for _, name := range gridBenches {
		bench, err := speculate.Load(name)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := bench.EncodeTrace()
		if err != nil {
			b.Fatal(err)
		}
		encoded[name] = enc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range gridBenches {
			bench, err := speculate.LoadFromTraceData(name, encoded[name])
			if err != nil {
				b.Fatal(err)
			}
			for _, policy := range gridPolicies {
				if _, err := bench.RunNamed(policy, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
